package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// EventKind identifies what a trace event records.
type EventKind uint8

// The event kinds emitted by the engine (internal/core) and the scheduler
// (internal/pool). Engine events key on Event.Group; scheduler events
// (EvSteal, EvLocalHit, EvTaskFinish) key on Event.Lane, the worker id.
const (
	// EvNone is the zero kind; it never appears in a snapshot.
	EvNone EventKind = iota
	// EvGroupStart marks a group execution starting on a worker.
	// Arg is the group's first input index.
	EvGroupStart
	// EvGroupFinish marks a group execution returning (normally or via
	// the squash fast-exit). Arg is the number of outputs produced.
	EvGroupFinish
	// EvAuxProduced marks auxiliary code producing a group's speculative
	// start state. Arg is the window length consumed.
	EvAuxProduced
	// EvValidateMatch marks a boundary whose speculative state was
	// accepted. Arg is the number of redos the acceptance consumed.
	EvValidateMatch
	// EvValidateMismatch marks a boundary whose first validation
	// attempt rejected the speculative state.
	EvValidateMismatch
	// EvRedo marks one original-producer re-execution. Arg is the
	// attempt number, starting at 1.
	EvRedo
	// EvAbort marks a boundary that exhausted its redo budget and
	// aborted speculation. Arg is the redo budget consumed.
	EvAbort
	// EvSquash marks one group squashed by an abort. Arg is the number
	// of inputs the squash discards.
	EvSquash
	// EvFallback marks the start of the sequential fallback after an
	// abort. Arg is the number of inputs reprocessed.
	EvFallback
	// EvSteal marks a worker dispatching a task stolen from another
	// worker's deque. Lane is the thief.
	EvSteal
	// EvLocalHit marks a worker dispatching a task from its own deque.
	EvLocalHit
	// EvTaskFinish marks a dispatched task completing on its worker.
	EvTaskFinish
	// EvPanic marks a speculative group squashed because user code
	// panicked on its lane (compute, aux, clone, or the boundary's
	// match/redo). Arg is the number of inputs the group covers.
	EvPanic
	// EvGroupTimeout marks a speculative group squashed because its lane
	// exceeded Options.GroupTimeout. Arg is the elapsed nanoseconds when
	// the lane noticed the deadline.
	EvGroupTimeout
	// EvBreakerDenied marks a run whose speculation was suppressed by an
	// open circuit breaker (the run executed sequentially).
	EvBreakerDenied
	// EvReserve marks a reservation lane write-min'ing its input's slot
	// footprint into a round's reservation table (the deterministic-
	// reservations protocol). Arg packs round<<32 | input index.
	EvReserve
	// EvReserveLost marks an input that found a lower-indexed input
	// holding one of its slots at check time and carried forward to the
	// next round. Arg packs round<<32 | input index.
	EvReserveLost
	// EvCommit marks one input's output committed by the reservations
	// coordinator. Arg packs round<<32 | input index.
	EvCommit
	// EvFootprintViolation marks a winner whose compute touched a state
	// slot outside its declared reservation footprint, caught by the
	// Options.FootprintCheck oracle. Arg is the offending slot.
	EvFootprintViolation
	// EvLaneCPUCommitted attributes lane CPU-time whose results were
	// committed to a group, emitted by the engine at resolution time.
	// Arg is the attributed wall-clock nanoseconds.
	EvLaneCPUCommitted
	// EvLaneCPUWasted attributes lane CPU-time whose results were
	// discarded — aborted, squashed, timed out, or spent on losing
	// reservation attempts. Arg is the attributed nanoseconds.
	EvLaneCPUWasted

	numEventKinds // sentinel, keep last
)

// eventKindNames maps kinds to their exposition names.
var eventKindNames = [numEventKinds]string{
	EvNone:               "none",
	EvGroupStart:         "group-start",
	EvGroupFinish:        "group-finish",
	EvAuxProduced:        "aux-produced",
	EvValidateMatch:      "validate-match",
	EvValidateMismatch:   "validate-mismatch",
	EvRedo:               "redo",
	EvAbort:              "abort",
	EvSquash:             "squash",
	EvFallback:           "fallback",
	EvSteal:              "steal",
	EvLocalHit:           "local-hit",
	EvTaskFinish:         "task-finish",
	EvPanic:              "panic",
	EvGroupTimeout:       "group-timeout",
	EvBreakerDenied:      "breaker-denied",
	EvReserve:            "reserve",
	EvReserveLost:        "reserve-lost",
	EvCommit:             "commit",
	EvFootprintViolation: "footprint-violation",
	EvLaneCPUCommitted:   "lane-cpu-committed",
	EvLaneCPUWasted:      "lane-cpu-wasted",
}

// String returns the kind's stable exposition name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// LaneCoord is the lane engine coordinator events are emitted on (mapped
// to the tracer's last ring); scheduler lanes are worker ids >= 0.
const LaneCoord = -1

// Event is one decoded trace record.
type Event struct {
	// TS is the event time in nanoseconds since the tracer's epoch
	// (monotonic, comparable across lanes).
	TS int64
	// Lane is the lane the event was emitted on: the worker id for
	// scheduler events, LaneCoord for engine coordinator events, and a
	// shard hint (the group index) for group-execution events.
	Lane int16
	// Kind is what happened.
	Kind EventKind
	// Group is the speculation group the event concerns, or -1.
	Group int32
	// Arg is the kind-specific argument (see the kind constants).
	Arg int64
}

// Slot sequence protocol: 0 = never written, seqBusy = write in progress,
// ticket+seqBase = slot holds the event with that ring ticket.
const (
	seqBusy uint64 = 1
	seqBase uint64 = 2
)

// tslot is one ring slot. Every word is atomic so concurrent Emit and
// Snapshot are race-free: a writer publishes the payload before the
// sequence word, and a reader validates the sequence word on both sides of
// its payload read, discarding the slot on any mismatch.
type tslot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64
	arg  atomic.Int64
}

// tring is one lane's bounded ring. pos is the ticket counter; slot
// ticket%len holds the event, overwriting the record len tickets older.
type tring struct {
	pos   atomic.Uint64
	_     [7]uint64 // keep neighbouring rings' hot counters off this line
	slots []tslot
}

// DefaultLaneCap is the per-lane ring capacity used when NewTracer is
// given a non-positive capacity: 4096 events × 32 bytes = 128 KiB/lane.
const DefaultLaneCap = 4096

// Tracer is a lock-free, bounded-memory speculation event log: one ring
// per lane, written with Emit and read with Snapshot. A nil *Tracer is a
// valid no-op sink — every method checks the receiver — which is the
// disabled fast path the engine relies on.
type Tracer struct {
	epoch time.Time
	rings []tring
}

// NewTracer returns a tracer with the given number of lanes (rounded up to
// 1) and per-lane capacity (rounded up to the next power of two;
// non-positive means DefaultLaneCap).
func NewTracer(lanes, perLaneCap int) *Tracer {
	if lanes < 1 {
		lanes = 1
	}
	if perLaneCap <= 0 {
		perLaneCap = DefaultLaneCap
	}
	capPow2 := 1
	for capPow2 < perLaneCap {
		capPow2 <<= 1
	}
	t := &Tracer{epoch: time.Now(), rings: make([]tring, lanes)}
	for i := range t.rings {
		t.rings[i].slots = make([]tslot, capPow2)
	}
	return t
}

// packMeta folds kind, lane and group into one word: kind in the top
// byte, the lane's 16 bits below it, the group's 32 bits at the bottom.
func packMeta(kind EventKind, lane int16, group int32) uint64 {
	return uint64(kind)<<56 | uint64(uint16(lane))<<40 | uint64(uint32(group))
}

// unpackMeta is the inverse of packMeta.
func unpackMeta(m uint64) (kind EventKind, lane int16, group int32) {
	return EventKind(m >> 56), int16(uint16(m >> 40)), int32(uint32(m))
}

// Lanes returns the tracer's lane count (0 for a nil tracer).
func (t *Tracer) Lanes() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

// Emit appends one event to the lane's ring, overwriting the oldest record
// when the ring is full. It never blocks and takes no locks; on a nil
// tracer it is a no-op, which is the disabled fast path. The lane is
// reduced modulo the lane count (negative lanes, like LaneCoord, map to
// the last ring) but recorded verbatim in the event.
func (t *Tracer) Emit(lane int, kind EventKind, group int32, arg int64) {
	if t == nil {
		return
	}
	n := len(t.rings)
	idx := lane % n
	if idx < 0 {
		idx += n
	}
	r := &t.rings[idx]
	ticket := r.pos.Add(1) - 1
	s := &r.slots[ticket&uint64(len(r.slots)-1)]
	s.seq.Store(seqBusy)
	s.ts.Store(int64(time.Since(t.epoch)))
	s.meta.Store(packMeta(kind, int16(lane), group))
	s.arg.Store(arg)
	s.seq.Store(ticket + seqBase)
}

// Snapshot returns the currently-readable events of every lane merged into
// time order (ties broken by lane, then kind, group and arg, so equal-input
// snapshots are deterministic). It is safe to call concurrently with Emit:
// slots being overwritten mid-read are detected via their sequence words
// and skipped. A nil tracer yields nil.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	var evs []Event
	for ri := range t.rings {
		r := &t.rings[ri]
		pos := r.pos.Load()
		capacity := uint64(len(r.slots))
		lo := uint64(0)
		if pos > capacity {
			lo = pos - capacity
		}
		for ticket := lo; ticket < pos; ticket++ {
			s := &r.slots[ticket&(capacity-1)]
			want := ticket + seqBase
			if s.seq.Load() != want {
				continue // overwritten or mid-write
			}
			ts, meta, arg := s.ts.Load(), s.meta.Load(), s.arg.Load()
			if s.seq.Load() != want {
				continue // overwritten while we read the payload
			}
			kind, lane, group := unpackMeta(meta)
			evs = append(evs, Event{TS: ts, Lane: lane, Kind: kind, Group: group, Arg: arg})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Arg < b.Arg
	})
	return evs
}

// Emitted returns the number of events ever emitted across all lanes.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for i := range t.rings {
		n += int64(t.rings[i].pos.Load())
	}
	return n
}

// Cursor tracks a Poll consumer's read position, one ticket per lane
// ring. The zero Cursor reads each ring from its oldest surviving event.
// A Cursor belongs to one tracer and one consumer; it is not safe for
// concurrent use.
type Cursor struct {
	next []uint64
}

// Poll appends the events published since the cursor's last position to
// buf (which may be nil) and advances the cursor, returning the extended
// buffer and the number of events lost to ring wrap-around since the
// previous poll. Unlike Snapshot, Poll is incremental and in order per
// ring: each ring is read oldest-first, and a slot still being written
// stops that ring's scan until the next poll, so no published event is
// skipped or delivered twice. Events from different rings are appended
// ring by ring, not merged by time — sort the batch if folding requires
// it. A nil tracer appends nothing.
func (t *Tracer) Poll(c *Cursor, buf []Event) ([]Event, int64) {
	if t == nil {
		return buf, 0
	}
	if len(c.next) < len(t.rings) {
		c.next = append(c.next, make([]uint64, len(t.rings)-len(c.next))...)
	}
	var dropped int64
	for ri := range t.rings {
		r := &t.rings[ri]
		pos := r.pos.Load()
		capacity := uint64(len(r.slots))
		ticket := c.next[ri]
		if pos > capacity && ticket < pos-capacity {
			// The ring lapped us while we were away: everything below
			// pos-capacity is gone.
			dropped += int64(pos - capacity - ticket)
			ticket = pos - capacity
		}
		for ; ticket < pos; ticket++ {
			s := &r.slots[ticket&(capacity-1)]
			want := ticket + seqBase
			seq := s.seq.Load()
			if seq < want {
				// Claimed but not yet published (mid-write): resume
				// here on the next poll to keep in-order delivery.
				break
			}
			if seq != want {
				dropped++ // overwritten while we were behind
				continue
			}
			ts, meta, arg := s.ts.Load(), s.meta.Load(), s.arg.Load()
			if s.seq.Load() != want {
				dropped++ // overwritten while we read the payload
				continue
			}
			kind, lane, group := unpackMeta(meta)
			buf = append(buf, Event{TS: ts, Lane: lane, Kind: kind, Group: group, Arg: arg})
		}
		c.next[ri] = ticket
	}
	return buf, dropped
}

// Dropped returns how many events have been evicted by ring wrap-around —
// the price of bounded memory. Tests that assert on complete logs check
// this is zero.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for i := range t.rings {
		pos := int64(t.rings[i].pos.Load())
		if c := int64(len(t.rings[i].slots)); pos > c {
			n += pos - c
		}
	}
	return n
}
