package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op instrument: every method checks the receiver, so emission
// sites pay one branch when metrics are disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be non-negative; counters only go up).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically-set instantaneous value. Like Counter, a nil
// *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by d (which may be negative) atomically — the
// up/down counterpart of Counter.Add for level-style gauges.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (a lock-free
// high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a log-scale histogram: bucket 0 holds
// values <= 0 and bucket i (1..64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log-scale (power-of-two bucket) histogram of int64
// observations, updated with plain atomics so concurrent Observe calls
// never contend on a lock. It covers the full int64 range in 65 buckets —
// coarse, but the quantities it observes (latencies in nanoseconds, queue
// depths, redo counts) only need order-of-magnitude resolution. A nil
// *Histogram is a no-op instrument.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// histBucket maps an observation to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// histBucketHi returns the inclusive upper bound of bucket i, used both as
// the exposition "le" label and as the quantile estimate.
func histBucketHi(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[histBucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]):
// the upper bound of the first bucket whose cumulative count reaches
// q*Count. With power-of-two buckets the estimate is within 2x of the true
// value, which is what log-scale percentile reporting promises.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return histBucketHi(i)
		}
	}
	return histBucketHi(histBuckets - 1)
}

// HistBuckets is the exported bucket count of the log-scale histograms,
// for consumers that carry HistogramSnapshot values around.
const HistBuckets = histBuckets

// HistogramSnapshot is a point-in-time copy of a histogram's buckets,
// cheap to subtract and query — the building block for windowed
// quantiles (telemetry.Signals keeps one per sample and reports
// quantiles of the bucket deltas).
type HistogramSnapshot struct {
	Counts [HistBuckets]int64
	Sum    int64
	Count  int64
}

// Snapshot copies the histogram's current buckets. Count is derived from
// the bucket copies so the snapshot is internally consistent even when
// Observe races with it. A nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := 0; i < histBuckets; i++ {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// Sub returns the per-bucket difference s - base, clamping each bucket
// (and the sum and count) at zero so a racing base snapshot can never
// produce negative window counts.
func (s HistogramSnapshot) Sub(base HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	for i := 0; i < histBuckets; i++ {
		if v := s.Counts[i] - base.Counts[i]; v > 0 {
			d.Counts[i] = v
			d.Count += v
		}
	}
	if v := s.Sum - base.Sum; v > 0 {
		d.Sum = v
	}
	return d
}

// Quantile returns the same upper-bound q-quantile estimate as
// Histogram.Quantile, computed over the snapshot's buckets.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += s.Counts[i]
		if cum >= target {
			return histBucketHi(i)
		}
	}
	return histBucketHi(histBuckets - 1)
}

// Registry is a named collection of counters, gauges and histograms with a
// deterministic Prometheus text exposition. Instruments are get-or-create
// by name, so independent components can share a registry without
// coordination. A nil *Registry hands out nil instruments, which are
// themselves no-ops — disabling metrics is free at every layer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// cfuncs and gfuncs are function-backed instruments: their value is
	// read at exposition time, which lets state that already has its own
	// atomic counters (the Tracer's emit/drop totals) appear on every
	// scrape without double accounting.
	cfuncs map[string]func() int64
	gfuncs map[string]func() int64
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		cfuncs:   map[string]func() int64{},
		gfuncs:   map[string]func() int64{},
		help:     map[string]string{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a function-backed counter: fn is called at
// exposition time and must be monotonically non-decreasing and safe for
// concurrent use. Re-registering a name replaces its function. A nil
// registry ignores the registration.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfuncs[name] = fn
}

// GaugeFunc registers a function-backed gauge, read at exposition time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// SetHelp attaches a HELP string to the instrument registered under name;
// WriteText emits it as the metric's `# HELP` line. For a histogram the
// name is the base name (without _bucket/_sum/_count).
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// WriteText writes every instrument in the Prometheus text exposition
// format (version 0.0.4), sorted by name so output is deterministic. Each
// metric gets a `# TYPE` line (and a `# HELP` line when SetHelp was
// called): counters and gauges as single samples, histograms as the
// standard cumulative `_bucket{le="..."}` series — complete between the
// first and last non-empty bucket, so empty interior buckets are emitted
// rather than skipped — followed by `_sum` and `_count`, plus
// `_p50`/`_p90`/`_p99` quantile-estimate gauges under their own names.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.cfuncs)+len(r.gfuncs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.cfuncs {
		names = append(names, n)
	}
	for n := range r.gfuncs {
		names = append(names, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	cfuncs := make(map[string]func() int64, len(r.cfuncs))
	for n, f := range r.cfuncs {
		cfuncs[n] = f
	}
	gfuncs := make(map[string]func() int64, len(r.gfuncs))
	for n, f := range r.gfuncs {
		gfuncs[n] = f
	}
	help := make(map[string]string, len(r.help))
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.Unlock()

	header := func(name, typ string) error {
		if h, ok := help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	sample := func(name, typ string, v int64) error {
		if err := header(name, typ); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", name, v)
		return err
	}

	sort.Strings(names)
	for _, n := range names {
		switch {
		case counters[n] != nil:
			if err := sample(n, "counter", counters[n].Value()); err != nil {
				return err
			}
		case gauges[n] != nil:
			if err := sample(n, "gauge", gauges[n].Value()); err != nil {
				return err
			}
		case cfuncs[n] != nil:
			if err := sample(n, "counter", cfuncs[n]()); err != nil {
				return err
			}
		case gfuncs[n] != nil:
			if err := sample(n, "gauge", gfuncs[n]()); err != nil {
				return err
			}
		default:
			if err := writeHistogramText(w, n, hists[n], header); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogramText emits one histogram in the Prometheus histogram
// shape: cumulative le buckets (complete between the first and last
// non-empty bucket), the mandatory +Inf bucket, _sum and _count, then the
// quantile-estimate gauges.
func writeHistogramText(w io.Writer, n string, h *Histogram, header func(name, typ string) error) error {
	if err := header(n, "histogram"); err != nil {
		return err
	}
	// Snapshot the buckets once so the emitted series is internally
	// consistent (cumulative counts never exceed the +Inf bucket) even
	// when Observe races with the scrape; the count is derived from the
	// same snapshot for the same reason.
	var counts [histBuckets]int64
	var total int64
	first, last := -1, -1
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum int64
	if first >= 0 {
		for i := first; i <= last; i++ {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, histBucketHi(i), cum); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum(), n, total); err != nil {
		return err
	}
	for _, q := range [...]struct {
		suffix string
		q      float64
	}{{"_p50", 0.5}, {"_p90", 0.9}, {"_p99", 0.99}} {
		qn := n + q.suffix
		if err := header(qn, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", qn, h.Quantile(q.q)); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the WriteText exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
