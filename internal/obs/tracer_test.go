package obs

import (
	"testing"
)

func TestEmitSnapshotRoundTrip(t *testing.T) {
	tr := NewTracer(3, 64)
	tr.Emit(0, EvGroupStart, 0, 10)
	tr.Emit(1, EvGroupStart, 1, 20)
	tr.Emit(LaneCoord, EvValidateMatch, 1, 2)
	tr.Emit(0, EvGroupFinish, 0, 8)

	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot %d events, want 4: %+v", len(evs), evs)
	}
	// Time-ordered, and timestamps never decrease.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot out of order at %d: %+v", i, evs)
		}
	}
	counts := map[EventKind]int{}
	for _, e := range evs {
		counts[e.Kind]++
	}
	if counts[EvGroupStart] != 2 || counts[EvGroupFinish] != 1 || counts[EvValidateMatch] != 1 {
		t.Fatalf("kind counts %v", counts)
	}
	for _, e := range evs {
		if e.Kind == EvValidateMatch {
			if e.Lane != LaneCoord || e.Group != 1 || e.Arg != 2 {
				t.Fatalf("validate event fields: %+v", e)
			}
		}
	}
	if tr.Emitted() != 4 || tr.Dropped() != 0 {
		t.Fatalf("emitted %d dropped %d", tr.Emitted(), tr.Dropped())
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, EvAbort, 3, 1) // must not panic
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil snapshot: %v", got)
	}
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Lanes() != 0 {
		t.Fatal("nil tracer accounting not zero")
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr := NewTracer(1, 8) // capacity rounds to 8
	for i := 0; i < 20; i++ {
		tr.Emit(0, EvLocalHit, -1, int64(i))
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot %d events, want 8", len(evs))
	}
	// The survivors are the newest 8, in emission order.
	for i, e := range evs {
		if e.Arg != int64(12+i) {
			t.Fatalf("event %d arg %d, want %d", i, e.Arg, 12+i)
		}
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", tr.Dropped())
	}
}

func TestNegativeAndOverflowLanesMapIntoRange(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.Emit(-1, EvSquash, 7, 0)
	tr.Emit(5, EvSquash, 8, 0) // 5 % 2 == ring 1, lane recorded as 5
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot %d events", len(evs))
	}
	lanes := map[int16]bool{}
	for _, e := range evs {
		lanes[e.Lane] = true
	}
	if !lanes[-1] || !lanes[5] {
		t.Fatalf("lanes recorded %v", lanes)
	}
}

func TestMetaPackRoundTrip(t *testing.T) {
	cases := []struct {
		kind  EventKind
		lane  int16
		group int32
	}{
		{EvGroupStart, 0, 0},
		{EvAbort, -1, 1 << 20},
		{EvTaskFinish, 32000, -1},
		{EvSquash, -32000, 1<<31 - 1},
	}
	for _, c := range cases {
		k, l, g := unpackMeta(packMeta(c.kind, c.lane, c.group))
		if k != c.kind || l != c.lane || g != c.group {
			t.Fatalf("pack(%v,%d,%d) -> (%v,%d,%d)", c.kind, c.lane, c.group, k, l, g)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvNone; k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
