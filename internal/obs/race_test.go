package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentEmitSnapshotStress hammers every tracer lane from many
// goroutines — forcing ring wrap-around — while other goroutines take
// snapshots and scrape the registry. Run under `go test -race` (the
// `make race` tier) it proves the seqlock slot protocol: no data race, no
// torn event (every decoded event must be one that some goroutine actually
// emitted), and snapshots stay within the ring bound.
func TestConcurrentEmitSnapshotStress(t *testing.T) {
	const (
		lanes    = 4
		laneCap  = 64
		writers  = 8
		perWrite = 2000
	)
	tr := NewTracer(lanes, laneCap)
	reg := NewRegistry()
	ctr := reg.Counter("emits_total")
	hist := reg.Histogram("args")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapshots atomic.Int64

	// Snapshot/scrape goroutines run until the writers finish.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := tr.Snapshot()
				snapshots.Add(1)
				if len(evs) > lanes*laneCap {
					t.Errorf("snapshot %d events exceeds ring bound %d", len(evs), lanes*laneCap)
					return
				}
				for _, e := range evs {
					// Torn-read detection: writers only emit EvLocalHit
					// with group == lane*10 and arg in [0, perWrite).
					if e.Kind != EvLocalHit {
						t.Errorf("unexpected kind %v: %+v", e.Kind, e)
						return
					}
					if int32(e.Lane)*10 != e.Group {
						t.Errorf("torn event: %+v", e)
						return
					}
					if e.Arg < 0 || e.Arg >= perWrite {
						t.Errorf("arg out of range: %+v", e)
						return
					}
				}
				_ = reg.Text()
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			lane := w % lanes
			for i := 0; i < perWrite; i++ {
				tr.Emit(lane, EvLocalHit, int32(lane)*10, int64(i))
				ctr.Inc()
				hist.Observe(int64(i))
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := tr.Emitted(); got != writers*perWrite {
		t.Fatalf("emitted %d, want %d", got, writers*perWrite)
	}
	if ctr.Value() != writers*perWrite || hist.Count() != writers*perWrite {
		t.Fatalf("metrics lost updates: counter %d hist %d", ctr.Value(), hist.Count())
	}
	if snapshots.Load() == 0 {
		t.Fatal("no snapshot ran concurrently")
	}
	// A quiescent snapshot reads a full ring of valid events.
	evs := tr.Snapshot()
	if len(evs) != lanes*laneCap {
		t.Fatalf("final snapshot %d events, want full rings %d", len(evs), lanes*laneCap)
	}
}
