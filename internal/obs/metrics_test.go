package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter must be get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3) // lower: no effect
	if g.Value() != 7 {
		t.Fatalf("gauge %d, want 7", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("gauge %d, want 11", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := r.WriteText(nil); err != nil {
		t.Fatal(err)
	}
	if r.Text() != "" {
		t.Fatal("nil registry text must be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	// 10 observations at 1 and 10 at 1000: p50 falls in the first
	// bucket's range, p99 in the 1000 bucket ([512,1024) -> hi 1023).
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if h.Count() != 20 || h.Sum() != 10+10*1000 {
		t.Fatalf("count %d sum %d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 1023 {
		t.Fatalf("p99 %d, want 1023", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 %d, want 1 (first non-empty bucket)", q)
	}
	if q := h.Quantile(1); q != 1023 {
		t.Fatalf("p100 %d, want 1023", q)
	}
	// Non-positive observations land in bucket 0 with upper bound 0.
	h2 := &Histogram{}
	h2.Observe(0)
	h2.Observe(-5)
	if q := h2.Quantile(0.9); q != 0 {
		t.Fatalf("non-positive quantile %d", q)
	}
}

func TestWriteTextDeterministicExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.SetHelp("a_total", "things counted")
	r.Gauge("depth_peak").SetMax(3)
	r.CounterFunc("f_total", func() int64 { return 9 })
	h := r.Histogram("lat_ns")
	h.Observe(100)
	h.Observe(200)
	got := r.Text()
	want := strings.Join([]string{
		"# HELP a_total things counted",
		"# TYPE a_total counter",
		"a_total 1",
		"# TYPE b_total counter",
		"b_total 2",
		"# TYPE depth_peak gauge",
		"depth_peak 3",
		"# TYPE f_total counter",
		"f_total 9",
		"# TYPE lat_ns histogram",
		"lat_ns_bucket{le=\"127\"} 1",
		"lat_ns_bucket{le=\"255\"} 2",
		"lat_ns_bucket{le=\"+Inf\"} 2",
		"lat_ns_sum 300",
		"lat_ns_count 2",
		"# TYPE lat_ns_p50 gauge",
		"lat_ns_p50 127",
		"# TYPE lat_ns_p90 gauge",
		"lat_ns_p90 255",
		"# TYPE lat_ns_p99 gauge",
		"lat_ns_p99 255",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
	if r.Text() != got {
		t.Fatal("exposition must be deterministic")
	}
}

func TestWriteTextCumulativeCompleteBuckets(t *testing.T) {
	// Observations at 1 and 1000 leave eight empty buckets between the
	// two non-empty ones; the exposition must emit every interior bucket
	// with its (unchanged) cumulative count rather than skip them.
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(1000)
	text := r.Text()
	var buckets []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "lat_bucket{") {
			buckets = append(buckets, line)
		}
	}
	// Bucket 1 (le=1) through bucket 10 (le=1023) inclusive, plus +Inf.
	if len(buckets) != 11 {
		t.Fatalf("bucket lines: %d, want 11 (interior buckets must not be skipped):\n%s",
			len(buckets), strings.Join(buckets, "\n"))
	}
	for i, want := range []string{
		`lat_bucket{le="1"} 1`, `lat_bucket{le="3"} 1`, `lat_bucket{le="7"} 1`,
		`lat_bucket{le="15"} 1`, `lat_bucket{le="31"} 1`, `lat_bucket{le="63"} 1`,
		`lat_bucket{le="127"} 1`, `lat_bucket{le="255"} 1`, `lat_bucket{le="511"} 1`,
		`lat_bucket{le="1023"} 2`, `lat_bucket{le="+Inf"} 2`,
	} {
		if buckets[i] != want {
			t.Fatalf("bucket %d = %q, want %q", i, buckets[i], want)
		}
	}
}

func TestObserverExposesTracerLoss(t *testing.T) {
	o := NewObserver(1, 4)
	for i := 0; i < 6; i++ {
		o.Tracer.Emit(0, EvGroupStart, int32(i), 0)
	}
	text := o.Reg.Text()
	for _, want := range []string{
		"trace_events_emitted_total 6",
		"trace_events_dropped_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestObserverPreRegistersEverything(t *testing.T) {
	o := NewObserver(4, 128)
	if o.Tracer == nil || o.Reg == nil {
		t.Fatal("observer missing tracer or registry")
	}
	if o.Tracer.Lanes() != 4 {
		t.Fatalf("lanes %d", o.Tracer.Lanes())
	}
	o.Matches.Inc()
	o.ValidationLatencyNS.Observe(1500)
	text := o.Reg.Text()
	for _, want := range []string{
		"stats_validation_match_total 1",
		"stats_validation_latency_ns_count 1",
		"stats_aborts_total 0",
		"sched_steals_total 0",
		"sched_queue_depth_peak 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
