package obs

import "testing"

// BenchmarkEmitDisabled measures the engine's per-event cost with tracing
// off: a nil-receiver check and return. The acceptance budget is <5 ns/op
// — the "disabled tracing costs ~one branch" contract internal/core's
// per-group hot path relies on.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, EvGroupStart, 0, 0)
	}
}

// BenchmarkObserverDisabledGroupPath measures the full per-group guard
// sequence the engine executes when observability is off: one Observer
// nil check covering a group's start/finish emissions and counters.
func BenchmarkObserverDisabledGroupPath(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o != nil {
			o.GroupsStarted.Inc()
			o.Tracer.Emit(0, EvGroupStart, 0, 0)
			o.GroupsFinished.Inc()
			o.Tracer.Emit(0, EvGroupFinish, 0, 0)
		}
	}
}

// BenchmarkEmitEnabled is the enabled-path cost: a timestamp read plus a
// handful of atomic stores into the lane's ring.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(4, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, EvGroupStart, 0, int64(i))
	}
}

// BenchmarkHistogramObserve is the enabled metrics hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
