package ir

import "testing"

func TestCloneIsDeep(t *testing.T) {
	f := &Function{Name: "f", Instrs: []Instr{
		{Op: Param, Index: 0},
		{Op: Const, Value: 2},
		{Op: Add, Args: []int{0, 1}},
		{Op: Ret, Args: []int{2}},
	}}
	c := f.Clone("g")
	c.Instrs[1].Value = 99
	c.Instrs[2].Args[0] = 1
	if f.Instrs[1].Value != 2 || f.Instrs[2].Args[0] != 0 {
		t.Fatal("clone aliases original")
	}
	if c.Name != "g" {
		t.Fatal("clone name")
	}
}

func TestCalleesAndTradeoffRefs(t *testing.T) {
	f := &Function{Name: "f", Instrs: []Instr{
		{Op: Call, Callee: "a"},
		{Op: Call, Callee: "b"},
		{Op: Call, Callee: "a"},
		{Op: Placeholder, Tradeoff: "t1"},
		{Op: TypeUse, Tradeoff: "t2", Name: "v"},
		{Op: Placeholder, Tradeoff: "t1"},
	}}
	if got := f.Callees(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("callees: %v", got)
	}
	if got := f.TradeoffRefs(); len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Fatalf("tradeoff refs: %v", got)
	}
}

func TestEvalArithmetic(t *testing.T) {
	m := NewModule()
	// f(x) = (x + 3) * 2
	m.AddFunction(&Function{Name: "f", Instrs: []Instr{
		{Op: Param, Index: 0},
		{Op: Const, Value: 3},
		{Op: Add, Args: []int{0, 1}},
		{Op: Const, Value: 2},
		{Op: Mul, Args: []int{2, 3}},
		{Op: Ret, Args: []int{4}},
	}})
	got, err := m.Eval("f", 5)
	if err != nil || got != 16 {
		t.Fatalf("Eval: %d, %v", got, err)
	}
}

func TestEvalErrors(t *testing.T) {
	m := NewModule()
	m.AddFunction(&Function{Name: "noret", Instrs: []Instr{{Op: Const, Value: 1}}})
	m.AddFunction(&Function{Name: "opaque", Instrs: []Instr{{Op: Extern}, {Op: Ret, Args: []int{0}}}})
	m.AddFunction(&Function{Name: "badparam", Instrs: []Instr{{Op: Param, Index: 3}, {Op: Ret, Args: []int{0}}}})
	if _, err := m.Eval("missing"); err == nil {
		t.Fatal("missing function")
	}
	if _, err := m.Eval("noret"); err == nil {
		t.Fatal("missing return")
	}
	if _, err := m.Eval("opaque"); err == nil {
		t.Fatal("opaque function")
	}
	if _, err := m.Eval("badparam", 1); err == nil {
		t.Fatal("bad param index")
	}
}

func TestModuleTradeoffTable(t *testing.T) {
	m := NewModule()
	m.Tradeoffs = append(m.Tradeoffs, TradeoffMeta{Name: "a"}, TradeoffMeta{Name: "b"})
	if _, ok := m.Tradeoff("a"); !ok {
		t.Fatal("lookup a")
	}
	if _, ok := m.Tradeoff("c"); ok {
		t.Fatal("lookup c")
	}
	if !m.RemoveTradeoff("a") || m.RemoveTradeoff("a") {
		t.Fatal("remove semantics")
	}
	if len(m.Tradeoffs) != 1 || m.Tradeoffs[0].Name != "b" {
		t.Fatal("table after removal")
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m := NewModule()
	m.AddFunction(&Function{Name: "f"})
	m.AddFunction(&Function{Name: "f"})
}

func TestInstrCount(t *testing.T) {
	m := NewModule()
	m.AddFunction(&Function{Name: "a", Instrs: make([]Instr, 3)})
	m.AddFunction(&Function{Name: "b", Instrs: make([]Instr, 4)})
	if m.InstrCount() != 7 {
		t.Fatalf("instr count: %d", m.InstrCount())
	}
}

func TestOpcodeStrings(t *testing.T) {
	names := map[Opcode]string{
		Const: "const", Param: "param", Add: "add", Mul: "mul", Call: "call",
		Placeholder: "placeholder", TypeUse: "typeuse", Extern: "extern", Ret: "ret",
	}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%v string", op)
		}
	}
	if Opcode(99).String() != "Opcode(99)" {
		t.Fatal("unknown opcode")
	}
}
