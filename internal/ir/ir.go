// Package ir is the intermediate representation shared by the STATS
// middle-end and back-end compilers (§3.4). The paper extends LLVM IR with
// metadata tables (in the style of CIL metadata) that describe the state
// space explicitly; this reproduction defines a compact typed IR with the
// same observable structure:
//
//   - functions, with instructions and a call graph, including tradeoff
//     placeholder calls (the T_42() calls of Figure 11);
//   - metadata tables describing tradeoffs (with their getValue functions,
//     themselves IR, which the back-end "JIT-executes" to resolve an index
//     to a value) and state dependences (with their compute, auxiliary and
//     comparison functions).
package ir

import "fmt"

// Opcode enumerates the instruction kinds the pipeline manipulates. Host
// computation is opaque (Extern); the pipeline's job is cloning,
// placeholder substitution, and callee rewiring — exactly the operations
// the paper's back-end performs.
type Opcode int

const (
	// Const materializes a constant value.
	Const Opcode = iota
	// Param reads the function's i-th parameter.
	Param
	// Add and Mul are the arithmetic getValue functions need.
	Add
	Mul
	// Call invokes another IR function by name.
	Call
	// Placeholder is a tradeoff reference: a call to the tradeoff's
	// placeholder function (T_42(42) in Figure 11). The back-end
	// replaces it according to the tradeoff's kind.
	Placeholder
	// TypeUse marks a variable whose declared type is a Type tradeoff;
	// the back-end re-types it and inserts casts as needed.
	TypeUse
	// Extern stands for opaque host computation.
	Extern
	// Ret returns the value produced by instruction Args[0].
	Ret
	// StateRead reads the state variable named by Name. The effect
	// analysis uses these to compute per-function read sets; the
	// evaluator treats them as opaque.
	StateRead
	// StateWrite writes the state variable named by Name. Auxiliary code
	// may only write its own dependence's state (the speculative start
	// state); the effect analysis enforces this.
	StateWrite
	// InputRead reads the input Index positions back from the current
	// invocation (0 = the most recent input). Auxiliary code may only
	// read offsets inside its dependence's declared window.
	InputRead
	// InputField reads the integer field named by Name from the current
	// input — the value slot-index expressions are affine in. The footprint
	// analysis models it as the symbolic variable of its affine domain.
	InputField
	// StateReadIdx reads one element of the state variable named by Name;
	// Args[0] is the instruction computing the element index. The footprint
	// analysis resolves the index to an affine expression over the input
	// (or widens to whole-state when it cannot).
	StateReadIdx
	// StateWriteIdx writes one element of the state variable named by Name;
	// Args[0] is the instruction computing the element index.
	StateWriteIdx
)

// opcodeCount is the number of defined opcodes; the verifier rejects
// instructions outside [0, opcodeCount).
const opcodeCount = int(StateWriteIdx) + 1

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return int(o) >= 0 && int(o) < opcodeCount }

// String returns the opcode's name.
func (o Opcode) String() string {
	switch o {
	case Const:
		return "const"
	case Param:
		return "param"
	case Add:
		return "add"
	case Mul:
		return "mul"
	case Call:
		return "call"
	case Placeholder:
		return "placeholder"
	case TypeUse:
		return "typeuse"
	case Extern:
		return "extern"
	case Ret:
		return "ret"
	case StateRead:
		return "stateread"
	case StateWrite:
		return "statewrite"
	case InputRead:
		return "inputread"
	case InputField:
		return "inputfield"
	case StateReadIdx:
		return "statereadidx"
	case StateWriteIdx:
		return "statewriteidx"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Pos is a source position (1-based line and column) threaded from the
// front-end so every diagnostic can point at real source. The zero Pos
// means "position unknown" (compiler-synthesized code with no source
// anchor).
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position carries real source coordinates.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for an unknown position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.Col <= 0 {
		return fmt.Sprintf("%d", p.Line)
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Instr is one instruction. Fields are used per-opcode: Value for Const;
// Index for Param (parameter index) and InputRead (offset back from the
// current input); Args for Add/Mul/Ret operand instruction indices;
// Callee for Call; Tradeoff for Placeholder and TypeUse; Name for
// TypeUse's variable and StateRead/StateWrite's state variable. Pos is
// the source position of the construct the instruction was lowered from.
type Instr struct {
	Op       Opcode
	Value    int64
	Index    int
	Args     []int
	Callee   string
	Tradeoff string
	Name     string
	Pos      Pos
}

// Function is an IR function.
type Function struct {
	Name   string
	Instrs []Instr
}

// Clone returns a deep copy of the function under a new name.
func (f *Function) Clone(name string) *Function {
	c := &Function{Name: name, Instrs: make([]Instr, len(f.Instrs))}
	for i, in := range f.Instrs {
		in.Args = append([]int(nil), in.Args...)
		c.Instrs[i] = in
	}
	return c
}

// Callees returns the distinct names this function calls.
func (f *Function) Callees() []string {
	seen := map[string]bool{}
	var out []string
	for _, in := range f.Instrs {
		if in.Op == Call && !seen[in.Callee] {
			seen[in.Callee] = true
			out = append(out, in.Callee)
		}
	}
	return out
}

// TradeoffRefs returns the distinct tradeoffs this function references
// (placeholders and type uses).
func (f *Function) TradeoffRefs() []string {
	seen := map[string]bool{}
	var out []string
	for _, in := range f.Instrs {
		if (in.Op == Placeholder || in.Op == TypeUse) && !seen[in.Tradeoff] {
			seen[in.Tradeoff] = true
			out = append(out, in.Tradeoff)
		}
	}
	return out
}

// TradeoffKind mirrors tradeoff.Kind at the IR level.
type TradeoffKind int

const (
	// ConstantKind replaces a placeholder call with a constant.
	ConstantKind TradeoffKind = iota
	// TypeKind re-types a variable.
	TypeKind
	// FunctionKind replaces a placeholder callee.
	FunctionKind
)

// TradeoffMeta is one row of the tradeoff metadata table (the TO[] array
// of Figure 11).
type TradeoffMeta struct {
	Name string
	Kind TradeoffKind
	// GetValue is the IR function mapping an index to a value id; the
	// back-end executes it (the paper uses LLVM's dynamic compiler).
	GetValue string
	// Size is the number of legal indices (getMaxIndex()).
	Size int64
	// Default is getDefaultIndex().
	Default int64
	// ValueNames maps value ids to names for Type and Function
	// tradeoffs (e.g. type names, callee names); nil for constants.
	ValueNames []string
	// Aux marks tradeoffs cloned into auxiliary code.
	Aux bool
	// ClonedFrom is the original tradeoff's name for aux clones.
	ClonedFrom string
	// Pos is the source position of the tradeoff declaration.
	Pos Pos
}

// IndexExpr is one declared slot-footprint entry: either the whole state
// (Whole), or the affine index Stride*Field+Offset over one integer input
// field (Field == "" makes it the constant Offset). It is the footprint
// analysis's abstract domain element, shared between declared reservations
// (DepMeta.Reserve) and inferred accesses.
type IndexExpr struct {
	// Whole marks the ⊤ element: the entry covers every state slot.
	Whole bool
	// Field names the input field the index is affine in; "" means the
	// index is the constant Offset.
	Field string
	// Stride scales Field (ignored when Field is "").
	Stride int64
	// Offset is the additive constant.
	Offset int64
	// Pos is the source position of the declaration or access.
	Pos Pos
}

// String renders the expression in the front-end's concrete syntax.
func (e IndexExpr) String() string {
	switch {
	case e.Whole:
		return "*"
	case e.Field == "":
		return fmt.Sprintf("%d", e.Offset)
	case e.Stride == 1 && e.Offset == 0:
		return e.Field
	case e.Stride == 1:
		return fmt.Sprintf("%s+%d", e.Field, e.Offset)
	case e.Offset == 0:
		return fmt.Sprintf("%d*%s", e.Stride, e.Field)
	default:
		return fmt.Sprintf("%d*%s+%d", e.Stride, e.Field, e.Offset)
	}
}

// Same reports whether two expressions denote the same slot set, ignoring
// positions.
func (e IndexExpr) Same(o IndexExpr) bool {
	if e.Whole || o.Whole {
		return e.Whole == o.Whole
	}
	if e.Field != o.Field {
		return false
	}
	if e.Field == "" {
		return e.Offset == o.Offset
	}
	return e.Stride == o.Stride && e.Offset == o.Offset
}

// DepMeta is one row of the state-dependence metadata table.
type DepMeta struct {
	Name    string
	Input   string
	State   string
	Output  string
	Compute string
	// AuxCompute is filled by the middle-end: the cloned compute
	// function that serves as auxiliary code.
	AuxCompute string
	// Compare is the state-comparison method ("" when the dependence
	// needs none).
	Compare string
	// Window is the declared auxiliary input window: the number of
	// recent inputs the dependence's auxiliary code may read. 0 means
	// the declaration did not bound it.
	Window int
	// Slots is the declared number of state slots the dependence's
	// reservations decompose into; 0 means the state is not slotted
	// (whole-state single-slot reservations).
	Slots int
	// Reserve is the declared slot footprint: the index expressions the
	// developer promises cover every state element the compute touches.
	// The footprints analysis pass checks the promise against the
	// inferred accesses.
	Reserve []IndexExpr
	// Pos is the source position of the statedep declaration.
	Pos Pos
}

// Module is a compilation unit: functions plus metadata.
type Module struct {
	Functions map[string]*Function
	Tradeoffs []TradeoffMeta
	Deps      []DepMeta
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{Functions: map[string]*Function{}}
}

// AddFunction inserts f, panicking on duplicates (compiler bug).
func (m *Module) AddFunction(f *Function) {
	if _, dup := m.Functions[f.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %s", f.Name))
	}
	m.Functions[f.Name] = f
}

// Tradeoff returns the named tradeoff row and whether it exists.
func (m *Module) Tradeoff(name string) (*TradeoffMeta, bool) {
	for i := range m.Tradeoffs {
		if m.Tradeoffs[i].Name == name {
			return &m.Tradeoffs[i], true
		}
	}
	return nil, false
}

// RemoveTradeoff deletes the named row, reporting whether it existed.
func (m *Module) RemoveTradeoff(name string) bool {
	for i := range m.Tradeoffs {
		if m.Tradeoffs[i].Name == name {
			m.Tradeoffs = append(m.Tradeoffs[:i], m.Tradeoffs[i+1:]...)
			return true
		}
	}
	return false
}

// InstrCount returns the module's total instruction count — the "binary
// size" proxy Table 1's size-increase column uses.
func (m *Module) InstrCount() int {
	n := 0
	for _, f := range m.Functions {
		n += len(f.Instrs)
	}
	return n
}

// Eval interprets the named function with the given arguments, supporting
// the arithmetic subset getValue functions use (Const/Param/Add/Mul/Ret).
// It returns an error for opaque or malformed functions.
func (m *Module) Eval(name string, args ...int64) (int64, error) {
	f, ok := m.Functions[name]
	if !ok {
		return 0, fmt.Errorf("ir: no function %s", name)
	}
	vals := make([]int64, len(f.Instrs))
	for i, in := range f.Instrs {
		switch in.Op {
		case Const:
			vals[i] = in.Value
		case Param:
			if in.Index < 0 || in.Index >= len(args) {
				return 0, fmt.Errorf("ir: %s: param %d out of range", name, in.Index)
			}
			vals[i] = args[in.Index]
		case Add:
			vals[i] = vals[in.Args[0]] + vals[in.Args[1]]
		case Mul:
			vals[i] = vals[in.Args[0]] * vals[in.Args[1]]
		case Ret:
			return vals[in.Args[0]], nil
		default:
			return 0, fmt.Errorf("ir: %s: cannot evaluate opcode %s", name, in.Op)
		}
	}
	return 0, fmt.Errorf("ir: %s: missing return", name)
}
