package ir

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The JSON module format exists for the correctness tooling: the pipeline
// (frontend → midend) only produces well-formed modules, so the statsvet
// corpus needs a way to express deliberately malformed IR — dangling
// callees, operand-arity violations, incongruent clones — that the
// verifier must reject. The format is a direct, stable rendering of the
// Module structure with opcodes spelled as their String() names.

// jsonInstr mirrors Instr with opcode names and omitted zero fields.
type jsonInstr struct {
	Op       string `json:"op"`
	Value    int64  `json:"value,omitempty"`
	Index    int    `json:"index,omitempty"`
	Args     []int  `json:"args,omitempty"`
	Callee   string `json:"callee,omitempty"`
	Tradeoff string `json:"tradeoff,omitempty"`
	Name     string `json:"name,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
}

// jsonFunction mirrors Function.
type jsonFunction struct {
	Name   string      `json:"name"`
	Instrs []jsonInstr `json:"instrs"`
}

// jsonTradeoff mirrors TradeoffMeta with the kind spelled out.
type jsonTradeoff struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	GetValue   string   `json:"getValue"`
	Size       int64    `json:"size"`
	Default    int64    `json:"default"`
	ValueNames []string `json:"valueNames,omitempty"`
	Aux        bool     `json:"aux,omitempty"`
	ClonedFrom string   `json:"clonedFrom,omitempty"`
	Line       int      `json:"line,omitempty"`
	Col        int      `json:"col,omitempty"`
}

// jsonIndexExpr mirrors IndexExpr.
type jsonIndexExpr struct {
	Whole  bool   `json:"whole,omitempty"`
	Field  string `json:"field,omitempty"`
	Stride int64  `json:"stride,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Line   int    `json:"line,omitempty"`
	Col    int    `json:"col,omitempty"`
}

func (j jsonIndexExpr) expr() IndexExpr {
	return IndexExpr{
		Whole: j.Whole, Field: j.Field, Stride: j.Stride, Offset: j.Offset,
		Pos: Pos{Line: j.Line, Col: j.Col},
	}
}

func toJSONIndexExpr(e IndexExpr) jsonIndexExpr {
	return jsonIndexExpr{
		Whole: e.Whole, Field: e.Field, Stride: e.Stride, Offset: e.Offset,
		Line: e.Pos.Line, Col: e.Pos.Col,
	}
}

// jsonDep mirrors DepMeta.
type jsonDep struct {
	Name       string          `json:"name"`
	Input      string          `json:"input"`
	State      string          `json:"state"`
	Output     string          `json:"output"`
	Compute    string          `json:"compute"`
	AuxCompute string          `json:"auxCompute,omitempty"`
	Compare    string          `json:"compare,omitempty"`
	Window     int             `json:"window,omitempty"`
	Slots      int             `json:"slots,omitempty"`
	Reserve    []jsonIndexExpr `json:"reserve,omitempty"`
	Line       int             `json:"line,omitempty"`
	Col        int             `json:"col,omitempty"`
}

// jsonModule is the on-disk module document.
type jsonModule struct {
	Functions []jsonFunction `json:"functions"`
	Tradeoffs []jsonTradeoff `json:"tradeoffs,omitempty"`
	Deps      []jsonDep      `json:"deps,omitempty"`
}

// kindNames maps TradeoffKind values to their JSON spellings.
var kindNames = map[TradeoffKind]string{
	ConstantKind: "constant",
	TypeKind:     "type",
	FunctionKind: "function",
}

// opcodeByName is the inverse of Opcode.String for every defined opcode.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, opcodeCount)
	for o := Opcode(0); int(o) < opcodeCount; o++ {
		m[o.String()] = o
	}
	return m
}()

// EncodeJSON writes m to w as indented JSON with functions in name order,
// so encodings are deterministic artifacts fit for golden files.
func (m *Module) EncodeJSON(w io.Writer) error {
	doc := jsonModule{}
	names := make([]string, 0, len(m.Functions))
	for n := range m.Functions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := m.Functions[n]
		jf := jsonFunction{Name: f.Name, Instrs: make([]jsonInstr, len(f.Instrs))}
		for i, in := range f.Instrs {
			jf.Instrs[i] = jsonInstr{
				Op: in.Op.String(), Value: in.Value, Index: in.Index,
				Args: in.Args, Callee: in.Callee, Tradeoff: in.Tradeoff,
				Name: in.Name, Line: in.Pos.Line, Col: in.Pos.Col,
			}
		}
		doc.Functions = append(doc.Functions, jf)
	}
	for _, t := range m.Tradeoffs {
		doc.Tradeoffs = append(doc.Tradeoffs, jsonTradeoff{
			Name: t.Name, Kind: kindNames[t.Kind], GetValue: t.GetValue,
			Size: t.Size, Default: t.Default, ValueNames: t.ValueNames,
			Aux: t.Aux, ClonedFrom: t.ClonedFrom, Line: t.Pos.Line, Col: t.Pos.Col,
		})
	}
	for _, d := range m.Deps {
		jd := jsonDep{
			Name: d.Name, Input: d.Input, State: d.State, Output: d.Output,
			Compute: d.Compute, AuxCompute: d.AuxCompute, Compare: d.Compare,
			Window: d.Window, Slots: d.Slots, Line: d.Pos.Line, Col: d.Pos.Col,
		}
		for _, e := range d.Reserve {
			jd.Reserve = append(jd.Reserve, toJSONIndexExpr(e))
		}
		doc.Deps = append(doc.Deps, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeJSON reads a module document from r. Unknown opcodes and tradeoff
// kinds are errors; duplicate function names are errors (the in-memory
// Module cannot represent them). The decoded module is NOT verified —
// feed it to the analysis passes for that.
func DecodeJSON(r io.Reader) (*Module, error) {
	var doc jsonModule
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("ir: decoding module: %w", err)
	}
	m := NewModule()
	for _, jf := range doc.Functions {
		if jf.Name == "" {
			return nil, fmt.Errorf("ir: function with empty name")
		}
		if _, dup := m.Functions[jf.Name]; dup {
			return nil, fmt.Errorf("ir: duplicate function %s", jf.Name)
		}
		f := &Function{Name: jf.Name, Instrs: make([]Instr, len(jf.Instrs))}
		for i, ji := range jf.Instrs {
			op, ok := opcodeByName[strings.ToLower(ji.Op)]
			if !ok {
				return nil, fmt.Errorf("ir: %s instr %d: unknown opcode %q", jf.Name, i, ji.Op)
			}
			f.Instrs[i] = Instr{
				Op: op, Value: ji.Value, Index: ji.Index, Args: ji.Args,
				Callee: ji.Callee, Tradeoff: ji.Tradeoff, Name: ji.Name,
				Pos: Pos{Line: ji.Line, Col: ji.Col},
			}
		}
		m.Functions[f.Name] = f
	}
	for _, jt := range doc.Tradeoffs {
		kind, ok := kindByName(jt.Kind)
		if !ok {
			return nil, fmt.Errorf("ir: tradeoff %s: unknown kind %q", jt.Name, jt.Kind)
		}
		m.Tradeoffs = append(m.Tradeoffs, TradeoffMeta{
			Name: jt.Name, Kind: kind, GetValue: jt.GetValue,
			Size: jt.Size, Default: jt.Default, ValueNames: jt.ValueNames,
			Aux: jt.Aux, ClonedFrom: jt.ClonedFrom,
			Pos: Pos{Line: jt.Line, Col: jt.Col},
		})
	}
	for _, jd := range doc.Deps {
		d := DepMeta{
			Name: jd.Name, Input: jd.Input, State: jd.State, Output: jd.Output,
			Compute: jd.Compute, AuxCompute: jd.AuxCompute, Compare: jd.Compare,
			Window: jd.Window, Slots: jd.Slots, Pos: Pos{Line: jd.Line, Col: jd.Col},
		}
		for _, je := range jd.Reserve {
			d.Reserve = append(d.Reserve, je.expr())
		}
		m.Deps = append(m.Deps, d)
	}
	return m, nil
}

// kindByName parses a JSON kind spelling.
func kindByName(s string) (TradeoffKind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}
