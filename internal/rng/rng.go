// Package rng provides the deterministic pseudo-random value generators
// (PRVGs) that every nondeterministic workload in this repository draws from.
//
// The paper (§4.2, "Nondeterminism") restores PARSEC's pseudo random value
// generators to use random seeds "as it is done in a real scenario". This
// package reproduces that policy while keeping experiments replayable: a
// Source is seeded explicitly, and independent streams are derived by
// splitting, so a run is fully determined by its root seed while distinct
// invocations (and re-executions after a rollback) observe fresh randomness.
package rng

import "math"

// Source is a deterministic pseudo-random value generator. It combines a
// SplitMix64 seeder with a PCG-XSH-RR 64/32 core, which is small, fast, and
// has no measurable correlation between split streams for our purposes.
type Source struct {
	state uint64
	inc   uint64
	// spare holds a cached second Gaussian variate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that similar seeds yield unrelated streams.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources with different seeds
// produce unrelated streams; the same seed reproduces the same stream.
func New(seed uint64) *Source {
	s := seed
	r := &Source{}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // stream selector must be odd
	r.Uint32()                 // advance past the (weak) initial state
	return r
}

// Split derives an independent child Source. The parent advances, so
// successive Split calls yield distinct children; the child's stream does
// not overlap the parent's continued output in any way that matters here.
func (r *Source) Split() *Source {
	c := &Source{}
	r.SplitInto(c)
	return c
}

// SplitInto derives an independent child stream into c, reusing its
// storage. It advances the parent exactly as Split does and produces a
// bit-identical child stream, so callers may recycle Source values across
// runs without perturbing replay determinism. Any cached Gaussian spare in
// c is discarded.
func (r *Source) SplitInto(c *Source) {
	s := r.Uint64()
	c.state = splitmix64(&s)
	c.inc = splitmix64(&s) | 1
	c.spare, c.spareOK = 0, false
	c.Uint32()
}

// Uint32 returns the next 32 uniformly distributed bits (PCG-XSH-RR).
func (r *Source) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method over 32 bits when possible.
	if n <= math.MaxInt32 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			v := r.Uint32()
			m := uint64(v) * uint64(bound)
			if uint32(m) >= threshold {
				return int(m >> 32)
			}
		}
	}
	// Large n: fall back to 64-bit modulo rejection.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with mean 0 and stddev 1,
// using the Box-Muller transform with caching of the second variate.
func (r *Source) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.spareOK = true
	return u * f
}

// NormScaled returns a normally distributed float64 with the given mean and
// standard deviation.
func (r *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponentially distributed float64 with rate lambda.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive lambda")
	}
	// 1-Float64() is in (0,1], so the log argument is never zero.
	return -math.Log(1-r.Float64()) / lambda
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}
