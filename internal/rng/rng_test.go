package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws", same)
	}
}

func TestAdjacentSeedsUncorrelated(t *testing.T) {
	// SplitMix64 seeding should decorrelate seed and seed+1.
	a, b := New(1000), New(1001)
	var xor uint64
	for i := 0; i < 64; i++ {
		xor |= a.Uint64() ^ b.Uint64()
	}
	if bitsSet(xor) < 32 {
		t.Fatalf("adjacent seeds look correlated: xor popcount %d", bitsSet(xor))
	}
}

func bitsSet(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
	// A re-created parent splits identically: replay determinism.
	parent2 := New(7)
	d1 := parent2.Split()
	if got, want := d1.Uint64(), New(7).Split().Uint64(); got != want {
		t.Fatalf("split not deterministic: %d vs %d", got, want)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("scaled normal mean %v too far from 5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, lo, hi int16) bool {
		l, h := float64(lo), float64(hi)
		if l >= h {
			l, h = h, l+1
		}
		v := New(seed).Range(l, h)
		return v >= l && v < h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPropertyUniformCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		v := r.Intn(7)
		return v >= 0 && v < 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	a := New(97)
	b := New(97)
	var child Source
	for i := 0; i < 16; i++ {
		want := a.Split()
		// Leave a stale Gaussian spare behind to prove SplitInto resets it.
		child.spareOK = true
		child.spare = 42
		b.SplitInto(&child)
		for j := 0; j < 8; j++ {
			if w, g := want.Uint64(), child.Uint64(); w != g {
				t.Fatalf("split %d draw %d: Split %#x, SplitInto %#x", i, j, w, g)
			}
		}
		if w, g := want.Norm(), child.Norm(); w != g {
			t.Fatalf("split %d: Norm diverged: %v vs %v", i, w, g)
		}
		// Parents must stay in lockstep too.
		if w, g := a.Uint64(), b.Uint64(); w != g {
			t.Fatalf("split %d: parents diverged: %#x vs %#x", i, w, g)
		}
	}
}
