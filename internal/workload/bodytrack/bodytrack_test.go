package bodytrack

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestInputsFixedAcrossRuns(t *testing.T) {
	a := GenFrames(10, false)
	b := GenFrames(10, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs between generations", i)
		}
	}
}

func TestBadTrainingInputsAreStatic(t *testing.T) {
	frames := GenFrames(20, false)
	bad := GenFrames(20, true)
	// Normal subject moves; bad-training subject stays near the origin.
	moved := frames[0].Obs[0].Dist(frames[19].Obs[0])
	badMoved := bad[0].Obs[0].Dist(bad[19].Obs[0])
	if moved < 2 {
		t.Fatalf("normal subject barely moved: %v", moved)
	}
	if badMoved > 1 {
		t.Fatalf("bad-training subject moved: %v", badMoved)
	}
}

func TestTrackingAccuracy(t *testing.T) {
	// The filter must actually track: estimated positions should be close
	// to the (noisy observations of the) true positions.
	w := New()
	res := w.RunOriginal(1, 24).(Result)
	frames := GenFrames(24, false)
	var worst float64
	for i := 4; i < len(res.Frames); i++ { // allow burn-in
		for j := 0; j < numParts; j++ {
			d := res.Frames[i].Positions[j].Dist(frames[i].Obs[j])
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1.5 {
		t.Fatalf("tracking error too large: %v", worst)
	}
}

func TestNondeterminismAcrossSeeds(t *testing.T) {
	w := New()
	a := w.RunOriginal(1, 12)
	b := w.RunOriginal(2, 12)
	if d := a.Distance(b); d == 0 {
		t.Fatal("different seeds produced identical output; benchmark is deterministic")
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	w := New()
	a := w.RunOriginal(5, 12)
	b := w.RunOriginal(5, 12)
	if d := a.Distance(b); d != 0 {
		t.Fatalf("same seed differed: %v", d)
	}
}

func TestOracleMoreAccurateThanOriginal(t *testing.T) {
	// Oracle runs at quality-maximizing tradeoffs; a default run should
	// be measurably farther from a second oracle-grade run than the
	// oracles are from each other.
	w := New()
	oracle := w.RunOracle(16)
	orig := w.RunOriginal(3, 16)
	if d := orig.Distance(oracle); d <= 0 {
		t.Fatalf("original at zero distance from oracle: %v", d)
	}
}

func TestBoostedImprovesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(16)
	base := 0.0
	boosted := 0.0
	// Average over seeds to damp particle-filter noise.
	for seed := uint64(0); seed < 5; seed++ {
		base += w.RunOriginal(seed, 16).Distance(oracle)
		boosted += w.RunBoosted(seed, 16, 4).Distance(oracle)
	}
	if boosted >= base {
		t.Fatalf("boosting did not improve quality: base %v, boosted %v", base, boosted)
	}
}

func TestSTATSPreservesOutputQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(24)
	// Original output variability across seeds sets the acceptable band.
	var origDists []float64
	for seed := uint64(0); seed < 6; seed++ {
		origDists = append(origDists, w.RunOriginal(seed, 24).Distance(oracle))
	}
	maxOrig := 0.0
	for _, d := range origDists {
		if d > maxOrig {
			maxOrig = d
		}
	}
	// STATS runs must stay within a modest factor of the original band
	// (the paper guarantees no loss in output quality via its checks).
	for seed := uint64(0); seed < 4; seed++ {
		res, st := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 2, Rollback: 2, Workers: 4,
		})
		d := res.Distance(oracle)
		if d > 3*maxOrig+1e-9 {
			t.Fatalf("seed %d: STATS distance %v exceeds original band %v (stats %+v)", seed, d, maxOrig, st)
		}
	}
}

func TestSTATSSpeculationMostlySucceeds(t *testing.T) {
	// The paper's hypothesis: the auxiliary code usually produces an
	// acceptable state for bodytrack. Across seeds, matches must
	// dominate aborts.
	w := New()
	matches, aborts := 0, 0
	for seed := uint64(0); seed < 8; seed++ {
		_, st := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 3, Rollback: 3, Workers: 4,
		})
		matches += st.Matches
		aborts += st.Aborts
	}
	if matches == 0 {
		t.Fatal("auxiliary code never matched")
	}
	if aborts > matches {
		t.Fatalf("aborts (%d) dominate matches (%d)", aborts, matches)
	}
}

func TestSTATSOutputLengthPreserved(t *testing.T) {
	w := New()
	res, st := w.RunSTATS(1, 20, workload.SpecOptions{
		UseAux: true, GroupSize: 5, Window: 3, RedoMax: 2, Rollback: 2, Workers: 2,
	})
	if got := len(res.(Result).Frames); got != 20 {
		t.Fatalf("outputs: %d (stats %+v)", got, st)
	}
}

func TestZeroWindowHurtsSpeculation(t *testing.T) {
	// With no recent frames, the auxiliary state is the diffuse prior
	// and should match far less often.
	w := New()
	okWide, okZero := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		_, wide := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 2, Rollback: 2,
		})
		_, zero := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 0, RedoMax: 2, Rollback: 2,
		})
		okWide += wide.Matches
		okZero += zero.Matches
	}
	if okZero >= okWide {
		t.Fatalf("window 0 matched as often as window 4: %d vs %d", okZero, okWide)
	}
}

func TestCostModelShape(t *testing.T) {
	w := New()
	def := workload.SpecOptions{Window: 2}
	m := w.CostModel(64, def)
	if m.NumInputs != 64 {
		t.Fatalf("inputs: %d", m.NumInputs)
	}
	if math.Abs(m.InvocationWork-1) > 1e-9 {
		t.Fatalf("default invocation work should be 1, got %v", m.InvocationWork)
	}
	if m.MatchProb != 0 {
		t.Fatalf("triangulating acceptance cannot match on the first try: %v", m.MatchProb)
	}
	if m.RedoGain <= 0 || m.RedoGain > 1 {
		t.Fatalf("redo gain: %v", m.RedoGain)
	}
	// Cheaper aux tradeoffs shrink aux work.
	cheap := w.CostModel(64, workload.SpecOptions{Window: 2, TradeoffIdx: []int64{0, 0, 0}})
	if cheap.AuxWork >= m.AuxWork {
		t.Fatalf("cheap aux not cheaper: %v vs %v", cheap.AuxWork, m.AuxWork)
	}
	// Wider windows raise match probability and aux cost.
	wide := w.CostModel(64, workload.SpecOptions{Window: 6})
	if wide.RedoGain <= m.RedoGain {
		t.Fatal("wider window should match more")
	}
	if wide.AuxWork <= m.AuxWork {
		t.Fatal("wider window should cost more aux work")
	}
}

func TestDescriptorConsistency(t *testing.T) {
	d := New().Desc()
	if d.Name != "bodytrack" || !d.SupportsSTATS {
		t.Fatal("descriptor basics")
	}
	// Table 1: 5 tradeoff columns (3 algorithmic + 2 thread counts).
	if len(d.TradeoffLOC) != 5 {
		t.Fatalf("tradeoff LOC columns: %d", len(d.TradeoffLOC))
	}
	if len(d.Tradeoffs) != 3 {
		t.Fatalf("algorithmic tradeoffs: %d", len(d.Tradeoffs))
	}
	if d.ComparisonLOC != 19 {
		t.Fatalf("comparison LOC: %d", d.ComparisonLOC)
	}
}

func TestEncodedTradeoffsLimit(t *testing.T) {
	// With EncodedTradeoffs=1, only the first tradeoff follows the
	// requested index; the rest resolve to defaults.
	w := New()
	o := workload.SpecOptions{TradeoffIdx: []int64{0, 0, 0}, EncodedTradeoffs: 1}
	p := w.resolve(o, false)
	if p.layers != 1 {
		t.Fatalf("first tradeoff should be encoded: layers %d", p.layers)
	}
	if p.particles != 128 {
		t.Fatalf("third tradeoff should be default: particles %d", p.particles)
	}
}
