// Package bodytrack reproduces the paper's flagship benchmark (§2.2, §4.2):
// tracking a person's body through a stream of camera quadruples with an
// annealed particle filter. The analysis of quadruple i+1 consumes the body
// model produced by quadruple i — the state dependence that serializes the
// program. The computation is randomized (the annealing perturbations), so
// different runs produce slightly different, equally acceptable positions.
//
// The synthetic scene substitutes for the PARSEC camera streams: a body of
// eight parts follows a smooth 3-D trajectory; each frame carries noisy
// observations of the part positions (the fusion of the four cameras). The
// inputs are fixed per input seed — the same input across runs, as the
// paper requires — while the filter's randomness varies per run.
//
// Tradeoffs (§4.2): the number of simulated annealing layers, the data type
// (precision) of the annealing weight variable, and the number of particles.
// The auxiliary code re-localizes the body by running the same filter, at
// its own (cheaper) tradeoff settings, over the last few frames starting
// from the diffuse prior. The state comparison accepts a speculative state
// whose distance to an original state does not exceed the distance between
// two original states (sum of absolute body-part position differences).
package bodytrack

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
)

// numParts is the number of tracked body parts.
const numParts = 8

// numCameras is the number of cameras observing the scene ("captured by
// four cameras that target the same space", §2.2).
const numCameras = 4

// Frame is one camera quadruple: per-camera noisy observations of every
// body part, plus their fusion (the per-part mean across cameras) that the
// filter's likelihood and the tests consume.
type Frame struct {
	// Cameras[c][j] is camera c's observation of part j. Each camera
	// carries its own calibration bias and noise.
	Cameras [numCameras][numParts]mathx.Vec3
	// Obs[j] is the fused observation of part j.
	Obs [numParts]mathx.Vec3
}

// particle is one hypothesis of the body pose.
type particle struct {
	pose   [numParts]mathx.Vec3
	weight float64
}

// State is the body model: the particle set (vector<Particle> in Figure 8).
type State struct {
	particles []particle
}

// meanPose returns the weighted mean pose of the particle set.
func (s State) meanPose() [numParts]mathx.Vec3 {
	var mean [numParts]mathx.Vec3
	total := 0.0
	for _, p := range s.particles {
		total += p.weight
	}
	if total == 0 {
		total = float64(len(s.particles))
		for _, p := range s.particles {
			for j := 0; j < numParts; j++ {
				mean[j] = mean[j].Add(p.pose[j])
			}
		}
	} else {
		for _, p := range s.particles {
			w := p.weight
			for j := 0; j < numParts; j++ {
				mean[j] = mean[j].Add(p.pose[j].Scale(w))
			}
		}
	}
	for j := 0; j < numParts; j++ {
		mean[j] = mean[j].Scale(1 / total)
	}
	return mean
}

// poseDistance is the state-comparison distance: "the sum of the absolute
// differences of every body part position between two states".
func poseDistance(a, b State) float64 {
	pa, pb := a.meanPose(), b.meanPose()
	sum := 0.0
	for j := 0; j < numParts; j++ {
		sum += math.Abs(pa[j].X-pb[j].X) + math.Abs(pa[j].Y-pb[j].Y) + math.Abs(pa[j].Z-pb[j].Z)
	}
	return sum
}

// Output is the per-frame body-part positions.
type Output struct {
	Positions [numParts]mathx.Vec3
}

// Result is the full tracking output; its Distance is the relative mean
// square error of the body-part vectors (§4.2).
type Result struct {
	Frames []Output
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	o := ref.(Result)
	return quality.RelativeMSE(r.flatten(), o.flatten())
}

func (r Result) flatten() []float64 {
	out := make([]float64, 0, len(r.Frames)*numParts*3)
	for _, f := range r.Frames {
		for j := 0; j < numParts; j++ {
			out = append(out, f.Positions[j].X, f.Positions[j].Y, f.Positions[j].Z)
		}
	}
	return out
}

// params are the filter's algorithmic knobs, resolved from tradeoffs.
type params struct {
	layers    int
	precision tradeoff.Precision
	particles int
}

// W is the bodytrack workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload. LOC figures are Table 1's bodytrack
// row: tradeoffs in payoff order (annealing layers, data type, particles,
// then the two thread counts every benchmark naturally has).
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "bodytrack",
		OriginalLOC: 16430,
		NumDeps:     1,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("AnnealingLayers", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 10, Default: 4}),
			tradeoff.New("WeightPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("Particles", tradeoff.Constant, tradeoff.Enum{
				Values: []any{int64(16), int64(32), int64(64), int64(128), int64(256)}, Default: 3,
			}),
		},
		TradeoffLOC:       [][2]int{{60, 95}, {5, 10}, {0, 15}, {0, 10}, {0, 10}},
		ComparisonLOC:     19,
		SupportsSTATS:     true,
		VariabilitySource: "prvg",
	}
}

// resolve maps option tradeoff indices to filter parameters. defaults=true
// yields the original program's parameters regardless of the options.
func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	return params{
		layers:    int(ts[0].Opts.Value(idx(0)).(int64)),
		precision: ts[1].Opts.Value(idx(1)).(tradeoff.Precision),
		particles: int(ts[2].Opts.Value(idx(2)).(int64)),
	}
}

// trueCenter returns the body center's ground-truth position at frame t.
// The badTraining variant (§4.6: "the subject does not move across
// quadruples") pins the body at the origin.
func trueCenter(t int, badTraining bool) mathx.Vec3 {
	if badTraining {
		return mathx.Vec3{}
	}
	ft := float64(t)
	return mathx.Vec3{
		X: 4 * math.Sin(0.12*ft),
		Y: 4 * math.Sin(0.09*ft),
		Z: 0.15 * ft,
	}
}

// partOffset returns body part j's fixed offset from the center.
func partOffset(j int) mathx.Vec3 {
	ang := 2 * math.Pi * float64(j) / numParts
	return mathx.Vec3{X: math.Cos(ang), Y: math.Sin(ang), Z: 0.3 * float64(j%3)}
}

// GenFrames materializes the input stream. The input seed is fixed per
// (size, badTraining) so every run sees the same input.
func GenFrames(size int, badTraining bool) []Frame {
	return genFrames(size, badTraining)
}

func genFrames(size int, badTraining bool) []Frame {
	seed := uint64(0xB0D7_2ACC)
	if badTraining {
		seed ^= 0xBAD
	}
	r := rng.New(seed)
	// Per-camera calibration biases, fixed for the whole stream.
	var bias [numCameras]mathx.Vec3
	for c := range bias {
		bias[c] = mathx.Vec3{X: r.Norm() * 0.03, Y: r.Norm() * 0.03, Z: r.Norm() * 0.03}
	}
	frames := make([]Frame, size)
	for t := range frames {
		center := trueCenter(t, badTraining)
		for j := 0; j < numParts; j++ {
			truth := center.Add(partOffset(j))
			var fused mathx.Vec3
			for c := 0; c < numCameras; c++ {
				obs := truth.Add(bias[c]).Add(mathx.Vec3{
					X: r.Norm() * 0.16, Y: r.Norm() * 0.16, Z: r.Norm() * 0.16,
				})
				frames[t].Cameras[c][j] = obs
				fused = fused.Add(obs)
			}
			frames[t].Obs[j] = fused.Scale(1.0 / numCameras)
		}
	}
	return frames
}

// initialState returns the diffuse prior particle set.
func initialState(p params, r *rng.Source) State {
	s := State{particles: make([]particle, p.particles)}
	for i := range s.particles {
		for j := 0; j < numParts; j++ {
			s.particles[i].pose[j] = mathx.Vec3{
				X: r.Norm() * 2, Y: r.Norm() * 2, Z: r.Norm() * 2,
			}.Add(partOffset(j))
		}
		s.particles[i].weight = 1 / float64(p.particles)
	}
	return s
}

// cloneState implements the SDI's operator= (deep state privatization).
func cloneState(s State) State {
	c := State{particles: make([]particle, len(s.particles))}
	copy(c.particles, s.particles)
	return c
}

// updateModel is computeOutput's core (updateModel in Figures 7/8): one
// annealed particle-filter step against a frame.
func updateModel(r *rng.Source, p params, st State, f Frame) State {
	st = cloneState(st)
	// The particle count is a tradeoff; re-sample the set to the target
	// size if a (cheaper) auxiliary configuration narrows it.
	if len(st.particles) != p.particles {
		st = resizeParticles(st, p.particles, r)
	}
	n := len(st.particles)
	weights := make([]float64, n)
	for layer := p.layers; layer >= 1; layer-- {
		// Noise shrinks and weighting sharpens as annealing progresses
		// (higher layer index runs first). The body-part likelihood
		// factorizes, so each part anneals with its own resampling —
		// the per-part hierarchy of bodytrack's annealed filter.
		scale := 0.4 * math.Pow(0.7, float64(p.layers-layer))
		beta := 1.5 * float64(layer) / float64(p.layers)
		for j := 0; j < numParts; j++ {
			total := 0.0
			for i := range st.particles {
				st.particles[i].pose[j] = st.particles[i].pose[j].Add(mathx.Vec3{
					X: r.Norm() * scale, Y: r.Norm() * scale, Z: r.Norm() * scale,
				})
				// The likelihood multiplies the per-camera terms: the
				// product of exponentials is the exponential of the
				// mean squared camera residual.
				d := 0.0
				for c := 0; c < numCameras; c++ {
					diff := st.particles[i].pose[j].Sub(f.Cameras[c][j])
					d += diff.Dot(diff)
				}
				d /= numCameras
				// The weight variable's data type is a tradeoff.
				w := p.precision.Quantize(math.Exp(-d / beta))
				weights[i] = w
				total += w
			}
			if total <= 0 {
				for i := range weights {
					weights[i] = 1
				}
				total = float64(n)
			}
			resamplePart(st, j, weights, total, r)
		}
	}
	for i := range st.particles {
		st.particles[i].weight = 1 / float64(n)
	}
	return st
}

// resamplePart systematically resamples part j's positions in place by
// weight.
func resamplePart(st State, j int, weights []float64, total float64, r *rng.Source) {
	n := len(st.particles)
	picked := make([]mathx.Vec3, n)
	step := total / float64(n)
	u := r.Float64() * step
	cum := 0.0
	src := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+weights[src] < target && src < n-1 {
			cum += weights[src]
			src++
		}
		picked[i] = st.particles[src].pose[j]
	}
	for i := 0; i < n; i++ {
		st.particles[i].pose[j] = picked[i]
	}
}

// resizeParticles re-samples the set to n particles.
func resizeParticles(st State, n int, r *rng.Source) State {
	out := State{particles: make([]particle, n)}
	for i := 0; i < n; i++ {
		out.particles[i] = st.particles[r.Intn(len(st.particles))]
		out.particles[i].weight = 1 / float64(n)
	}
	return out
}

// computeOutput is the SDI compute target (Figure 8): update the model with
// the frame, emit the estimated positions.
func computeOutput(p params) core.Compute[Frame, State, Output] {
	return func(r *rng.Source, f Frame, s State) (Output, State) {
		s = updateModel(r, p, s, f)
		return Output{Positions: s.meanPose()}, s
	}
}

// auxCode is the auxiliary producer: re-detect the body from the recent
// frames and refine at the auxiliary tradeoff settings ("rather than
// blocking the analysis of i ... consume (only) a few previous quadruples",
// §2.2). Where a human is at quadruple i is nearly independent of where
// they were many quadruples ago, so a re-detection over the last k frames
// reproduces the original producer's state.
func auxCode(aux params) core.Aux[Frame, State] {
	return func(r *rng.Source, init State, recent []Frame) State {
		if len(recent) == 0 {
			// No inputs to consume: the best alternative producer is
			// S0 itself (re-sampled to the auxiliary particle count).
			return resizeParticles(init, aux.particles, r)
		}
		// Seed particles on the oldest recent frame's observations,
		// then refine through the remaining frames.
		s := State{particles: make([]particle, aux.particles)}
		for i := range s.particles {
			for j := 0; j < numParts; j++ {
				s.particles[i].pose[j] = recent[0].Obs[j].Add(mathx.Vec3{
					X: r.Norm() * 0.3, Y: r.Norm() * 0.3, Z: r.Norm() * 0.3,
				})
			}
			s.particles[i].weight = 1 / float64(aux.particles)
		}
		for _, f := range recent[1:] {
			s = updateModel(r, aux, s, f)
		}
		return s
	}
}

// stateOps wires the SDI state methods: deep clone and the triangulating
// acceptance method of §4.2 ("if the body positions encoded in S' are
// between two original states, then we accept and commit S'").
func stateOps() core.StateOps[State] {
	return core.StateOps[State]{
		Clone: cloneState,
		MatchAny: func(spec State, originals []State) bool {
			// Triangulating acceptance with a small tolerance — the
			// strictness is the developer's choice (§3.3). The distance
			// sums absolute differences over 24 coordinates, so 0.3 is
			// far below the observation noise.
			const tol = 0.3
			for i := range originals {
				di := poseDistance(spec, originals[i])
				for j := range originals {
					if i == j {
						continue
					}
					if di <= poseDistance(originals[j], originals[i])+tol {
						return true
					}
				}
			}
			return false
		},
		// Acceptance is a tolerance ball over a continuous pose distance
		// (and the auxiliary state may carry a different particle count
		// than the originals), so no continuous feature — nor the
		// particle count — survives an accepted pair. The only
		// acceptance-invariant feature is the fixed pose dimensionality:
		// the prefilter always falls through to the deep comparison,
		// which keeps the hash-first wiring and its hit counter live at
		// the cost of one probe.
		Fingerprint: func(State) uint64 {
			return mathx.NewHash64().Int(numParts).Sum()
		},
	}
}

// RunOriginal implements workload.Workload.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), false)
}

func (w *W) run(seed uint64, size int, p params, badTraining bool) Result {
	frames := genFrames(size, badTraining)
	r := rng.New(seed)
	s := initialState(p, r.Split())
	compute := computeOutput(p)
	res := Result{Frames: make([]Output, 0, size)}
	for _, f := range frames {
		var o Output
		o, s = compute(r.Split(), f, s)
		res.Frames = append(res.Frames, o)
	}
	return res
}

// RunOracle implements workload.Workload: the quality-maximizing
// configuration (§4.2's oracle), deterministic per size.
func (w *W) RunOracle(size int) workload.Result {
	return w.run(0x0AC1E, size, params{layers: 10, precision: tradeoff.Double, particles: 512}, false)
}

// RunBoosted implements workload.Workload (Fig. 16): spend factor× more
// quality-directed work.
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	if factor < 1 {
		factor = 1
	}
	p := w.resolve(workload.SpecOptions{}, true)
	p.particles = int(math.Min(512, float64(p.particles)*factor))
	p.layers = int(math.Min(10, float64(p.layers)*math.Sqrt(factor)))
	return w.run(seed, size, p, false)
}

// RunSTATS implements workload.Workload: execute through the core engine.
// The compute target runs at default tradeoffs (the middle-end pins
// non-auxiliary tradeoffs to defaults); the auxiliary code runs at the
// option-selected tradeoffs.
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	frames := genFrames(size, o.BadTraining)
	dep := core.New(computeOutput(def), auxCode(aux), stateOps())
	init := initialState(def, rng.New(seed^0x1717))
	outs, _, st := dep.Run(frames, init, o.CoreOptions(seed))
	return Result{Frames: outs}, st
}

// CostModel implements workload.Workload. Work units are normalized so one
// default-tradeoff invocation costs 1.0.
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		return float64(p.layers) * float64(p.particles) / (5.0 * 128.0) * p.precision.CostFactor()
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	// Acceptance model, calibrated against the real engine's behaviour
	// (see TestSTATSSpeculationMostlySucceeds): re-detection from a
	// window of a few frames at default-grade tradeoffs almost always
	// reproduces the model; cheap auxiliary tradeoffs cut the acceptance
	// probability steeply, because the triangulating comparison only
	// admits states within the originals' (tight) spread.
	layerTerm := math.Pow(math.Min(1, float64(aux.layers)/5), 0.35)
	// The speculative state is the particle cloud's mean pose; its error
	// scales as 1/sqrt(particles), and the triangulating comparison only
	// admits states within the originals' tight spread — so acceptance
	// collapses quickly below the default particle count.
	particleTerm := math.Pow(math.Min(1, float64(aux.particles)/128), 0.75)
	precTerm := [3]float64{0.85, 0.97, 1.0}[aux.precision]
	auxQuality := layerTerm * particleTerm * precTerm
	// The auxiliary code re-detects (it seeds on the window's first
	// observation), so even a single recent frame recovers most of the
	// acceptance; see TestZeroWindowHurtsSpeculation for the real-engine
	// calibration.
	windowTerm := 1 - math.Exp(-2.2*float64(win))
	if o.BadTraining {
		// §4.6 training inputs: the subject does not move, so any
		// non-empty window looks sufficient during profiling — the
		// misleading signal the tuner trains on.
		if win >= 1 {
			windowTerm = 0.99
		} else {
			windowTerm = 0.2
		}
	}
	// Wider rollbacks re-execute more nondeterministic work, spreading
	// the original states and making the triangulating acceptance easier.
	rb := o.Rollback
	if rb < 1 {
		rb = 1
	}
	rollbackTerm := 1 - math.Exp(-1.3*float64(rb))
	match := windowTerm * rollbackTerm * math.Min(1, auxQuality)
	return workload.Model{
		NumInputs:      size,
		InvocationWork: unit(def),
		AuxWork:        float64(win) * unit(aux),
		InnerWidth:     16,
		// bodytrack's original TLP pays heavy synchronization: "the
		// latter requires more frequent inter-thread synchronizations
		// creating a bottleneck" (§4.3).
		InnerSerialFrac: 0.04,
		SyncWork:        0.12,
		ValidateWork:    0.02,
		// The triangulating acceptance needs at least two original
		// states ("the distance of S' with an original state S is less
		// or equal the distance of another original state and S"), so
		// the first validation always re-executes; each re-execution
		// then accepts with the auxiliary state's quality.
		MatchProb: 0,
		RedoGain:  match,
	}
}
