package conformance

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/workload/registry"
)

// The task-graph generator samples speculation outcomes from each
// workload's analytic acceptance model (MatchProb / RedoGain). These tests
// pin the models to the real engine's behaviour class so the two layers
// cannot silently drift apart.

// strongOpts is a generously provisioned configuration: a wide window and
// redo budget, the regime in which a well-formed auxiliary producer should
// mostly succeed.
func strongOpts() workload.SpecOptions {
	return workload.SpecOptions{
		UseAux: true, GroupSize: 4, Window: 4, RedoMax: 3, Rollback: 4, Workers: 4,
	}
}

func TestByConstructionModelsNeverAbort(t *testing.T) {
	for _, w := range registry.Targets() {
		w := w
		m := w.CostModel(size, strongOpts())
		if m.MatchProb != 1 {
			continue // not a by-construction acceptance
		}
		t.Run(w.Desc().Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 4; seed++ {
				_, st := w.RunSTATS(seed, size, strongOpts())
				if st.Aborts != 0 {
					t.Fatalf("model says by-construction, real engine aborted: %+v", st)
				}
				if st.Redos != 0 {
					t.Fatalf("by-construction acceptance should never redo: %+v", st)
				}
			}
		})
	}
}

func TestDoomedModelNeverMatches(t *testing.T) {
	for _, w := range registry.Targets() {
		w := w
		m := w.CostModel(size, strongOpts())
		if m.MatchProb != 0 || m.RedoGain != 0 {
			continue // not modeled as hopeless
		}
		t.Run(w.Desc().Name, func(t *testing.T) {
			t.Parallel()
			o := strongOpts()
			// Boundaries whose group start is covered by the window see
			// the complete history, so their aux state is legitimately
			// reproducible; the "all previous inputs required" property
			// only bites beyond that.
			coveredBoundaries := o.Window / o.GroupSize
			for seed := uint64(0); seed < 3; seed++ {
				_, st := w.RunSTATS(seed, size, o)
				if st.Matches > coveredBoundaries {
					t.Fatalf("model says speculation is hopeless beyond the window, real engine matched %d times: %+v",
						st.Matches, st)
				}
				if st.Aborts == 0 {
					t.Fatalf("a doomed workload must eventually abort: %+v", st)
				}
			}
		})
	}
}

func TestTriangulatingModelsMostlySucceed(t *testing.T) {
	for _, w := range registry.Targets() {
		w := w
		m := w.CostModel(size, strongOpts())
		if m.MatchProb != 0 || m.RedoGain == 0 {
			continue // not a triangulating acceptance
		}
		t.Run(w.Desc().Name, func(t *testing.T) {
			t.Parallel()
			// Model sanity: a strong configuration promises high
			// per-redo acceptance.
			if m.RedoGain < 0.6 {
				t.Fatalf("strong config's modeled redo acceptance only %v", m.RedoGain)
			}
			matches, boundaries := 0, 0
			for seed := uint64(0); seed < 6; seed++ {
				_, st := w.RunSTATS(seed, size, strongOpts())
				matches += st.Matches
				boundaries += st.Matches + st.Aborts
				// Triangulation needs two originals: the first
				// validation can never pass without a redo.
				if st.Matches > 0 && st.Redos == 0 {
					t.Fatalf("matched without any redo under triangulating acceptance: %+v", st)
				}
			}
			if boundaries == 0 {
				t.Fatal("no validations happened")
			}
			rate := float64(matches) / float64(boundaries)
			if rate < 0.5 {
				t.Fatalf("real acceptance rate %.2f contradicts modeled %v", rate, m.RedoGain)
			}
		})
	}
}

func TestModelClassesCoverAllTargets(t *testing.T) {
	byConstruction, triangulating, doomed := 0, 0, 0
	for _, w := range registry.Targets() {
		m := w.CostModel(size, strongOpts())
		switch {
		case m.MatchProb == 1:
			byConstruction++
		case m.MatchProb == 0 && m.RedoGain > 0:
			triangulating++
		case m.MatchProb == 0 && m.RedoGain == 0:
			doomed++
		default:
			t.Fatalf("%s: unclassified acceptance model (%v, %v)",
				w.Desc().Name, m.MatchProb, m.RedoGain)
		}
	}
	// The paper's taxonomy: swaptions/streamcluster/streamclassifier by
	// construction, bodytrack/facedet triangulating, fluidanimate doomed.
	if byConstruction != 3 || triangulating != 2 || doomed != 1 {
		t.Fatalf("class counts: %d by-construction, %d triangulating, %d doomed",
			byConstruction, triangulating, doomed)
	}
}
