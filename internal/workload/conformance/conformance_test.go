// Package conformance runs every registered workload through a common
// battery of contract tests: the properties the harness and the paper's
// claims rely on, checked uniformly rather than per-package.
package conformance

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/workload/registry"
)

const size = 16

func forAll(t *testing.T, fn func(t *testing.T, w workload.Workload)) {
	t.Helper()
	for _, w := range registry.All() {
		w := w
		t.Run(w.Desc().Name, func(t *testing.T) {
			t.Parallel()
			fn(t, w)
		})
	}
}

func specOpts() workload.SpecOptions {
	return workload.SpecOptions{
		UseAux: true, GroupSize: 4, Window: 3, RedoMax: 3, Rollback: 2, Workers: 4,
	}
}

func TestDescriptorWellFormed(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		d := w.Desc()
		if d.Name == "" || d.OriginalLOC <= 0 {
			t.Fatal("descriptor basics")
		}
		if d.SupportsSTATS {
			if d.NumDeps < 1 {
				t.Fatal("supported workload without dependences")
			}
			if len(d.Tradeoffs) == 0 {
				t.Fatal("supported workload without tradeoffs")
			}
			// Table 1 columns: algorithmic tradeoffs plus the two
			// thread counts every benchmark naturally has.
			if len(d.TradeoffLOC) != len(d.Tradeoffs)+2 {
				t.Fatalf("tradeoff columns %d != algorithmic %d + 2",
					len(d.TradeoffLOC), len(d.Tradeoffs))
			}
		} else if d.RejectReason == "" {
			t.Fatal("rejected workload must explain why")
		}
		if d.VariabilitySource != "race" && d.VariabilitySource != "prvg" {
			t.Fatalf("variability source %q", d.VariabilitySource)
		}
	})
}

func TestRunsAreDeterministicPerSeed(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		a := w.RunOriginal(7, size)
		b := w.RunOriginal(7, size)
		if d := a.Distance(b); d != 0 {
			t.Fatalf("same seed diverged: %v", d)
		}
	})
}

func TestRunsAreNondeterministicAcrossSeeds(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		a := w.RunOriginal(1, size)
		found := false
		for seed := uint64(2); seed < 6; seed++ {
			if a.Distance(w.RunOriginal(seed, size)) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no output variability across seeds")
		}
	})
}

func TestSelfDistanceZero(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		r := w.RunOriginal(3, size)
		if d := r.Distance(r); d != 0 {
			t.Fatalf("self distance %v", d)
		}
	})
}

func TestOracleDeterministic(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		if d := w.RunOracle(size).Distance(w.RunOracle(size)); d != 0 {
			t.Fatalf("oracle not deterministic: %v", d)
		}
	})
}

func TestSTATSPreservesQualityBand(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		oracle := w.RunOracle(size)
		var worst float64
		for seed := uint64(0); seed < 5; seed++ {
			if d := w.RunOriginal(seed, size).Distance(oracle); d > worst {
				worst = d
			}
		}
		res, st := w.RunSTATS(11, size, specOpts())
		d := res.Distance(oracle)
		// The runtime's checks keep the output within the program's
		// own variability band (a small multiple covers sampling).
		if d > 4*worst+1e-9 {
			t.Fatalf("STATS distance %v far outside band %v (stats %+v)", d, worst, st)
		}
	})
}

func TestSTATSBookkeeping(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		_, st := w.RunSTATS(5, size, specOpts())
		if !w.Desc().SupportsSTATS {
			if st.Groups != 0 {
				t.Fatalf("rejected workload speculated: %+v", st)
			}
			return
		}
		if st.Inputs == 0 {
			t.Fatal("no inputs recorded")
		}
		if st.UsefulInvocations > st.Invocations {
			t.Fatalf("useful > total: %+v", st)
		}
		if st.Aborts > 1 {
			t.Fatalf("multiple aborts in one run: %+v", st)
		}
		if st.Aborts == 1 && st.FallbackInputs == 0 {
			t.Fatalf("abort without fallback: %+v", st)
		}
	})
}

func TestBoostedAtLeastAsGoodOnAverage(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		oracle := w.RunOracle(size)
		var base, boosted float64
		for seed := uint64(0); seed < 4; seed++ {
			base += w.RunOriginal(seed, size).Distance(oracle)
			boosted += w.RunBoosted(seed, size, 6).Distance(oracle)
		}
		// Strict improvement isn't universal (fluidanimate's jitter
		// damping is bounded), but boosting must never hurt much.
		if boosted > base*1.25+1e-9 {
			t.Fatalf("boosting degraded quality: %v vs %v", boosted, base)
		}
	})
}

func TestCostModelSane(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		m := w.CostModel(size, specOpts())
		if m.NumInputs != size {
			t.Fatalf("inputs %d", m.NumInputs)
		}
		if m.InvocationWork <= 0 {
			t.Fatalf("invocation work %v", m.InvocationWork)
		}
		if m.MatchProb < 0 || m.MatchProb > 1 {
			t.Fatalf("match prob %v", m.MatchProb)
		}
		if m.RedoGain < 0 || m.RedoGain > 1 {
			t.Fatalf("redo gain %v", m.RedoGain)
		}
		if m.InnerWidth < 1 {
			t.Fatalf("inner width %d", m.InnerWidth)
		}
		if m.InnerSerialFrac < 0 || m.InnerSerialFrac > 1 {
			t.Fatalf("serial frac %v", m.InnerSerialFrac)
		}
		if m.OuterParallel && m.OuterTasks < 2 {
			t.Fatalf("outer-parallel with %d tasks", m.OuterTasks)
		}
	})
}

func TestCostModelRespondsToTradeoffs(t *testing.T) {
	forAll(t, func(t *testing.T, w workload.Workload) {
		d := w.Desc()
		if !d.SupportsSTATS || len(d.Tradeoffs) == 0 {
			return
		}
		// All-minimum auxiliary tradeoffs must not cost more than
		// all-maximum ones.
		lo := specOpts()
		lo.TradeoffIdx = make([]int64, len(d.Tradeoffs))
		hi := specOpts()
		hi.TradeoffIdx = make([]int64, len(d.Tradeoffs))
		for i, tr := range d.Tradeoffs {
			hi.TradeoffIdx[i] = tr.Opts.MaxIndex() - 1
		}
		mLo := w.CostModel(size, lo)
		mHi := w.CostModel(size, hi)
		if mLo.AuxWork > mHi.AuxWork+1e-9 {
			t.Fatalf("minimum tradeoffs cost more aux work: %v vs %v", mLo.AuxWork, mHi.AuxWork)
		}
	})
}

func TestRegistry(t *testing.T) {
	if len(registry.Targets()) != 6 {
		t.Fatalf("targets: %d", len(registry.Targets()))
	}
	if len(registry.All()) != 7 {
		t.Fatalf("all: %d", len(registry.All()))
	}
	if _, err := registry.ByName("bodytrack"); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.ByName("nonexistent"); err == nil {
		t.Fatal("unknown name accepted")
	}
	names := registry.Names()
	if len(names) != 7 || names[0] != "swaptions" || names[6] != "canneal" {
		t.Fatalf("names: %v", names)
	}
}
