// Package fluidanimate reproduces the PARSEC fluidanimate benchmark (§4.2):
// an SPH-style fluid simulation advanced in time frames. The state — the
// positions and velocities of the fluid's particles — is updated by every
// frame, which is the state dependence.
//
// The paper includes fluidanimate deliberately to probe STATS's limits
// (§4.8): the fluid's condition at instant i requires the simulation of
// *all* previous instants (the Navier-Stokes equations do not forget), so
// auxiliary code built from a window of recent inputs cannot reproduce the
// state, speculation always aborts at validation, and the autotuner learns
// to satisfy this dependence conventionally.
//
// Tradeoffs (§4.2): the version of sqrt (different accuracies), the data
// types of three simulation variables, and the x, y, z dimensions of the
// per-thread prism (which shape the original parallelization's cost, not
// the physics). The state comparison works like bodytrack's with the
// average Euclidean distance among particle positions.
package fluidanimate

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
)

// numParticles is the fluid's particle count (small: the real runs feed
// quality experiments, not performance ones).
const numParticles = 48

// boxSize is the simulation cube's edge length.
const boxSize = 10.0

// smoothing is the SPH kernel radius.
const smoothing = 2.0

// dt is the integration step.
const dt = 0.05

// Step is one input: a time frame with a small external impulse (stirring),
// so inputs genuinely carry information.
type Step struct {
	Index   int
	Impulse mathx.Vec3
}

// State is the fluid condition: particle positions and velocities.
type State struct {
	Pos []mathx.Vec3
	Vel []mathx.Vec3
}

func cloneState(s State) State {
	c := State{Pos: make([]mathx.Vec3, len(s.Pos)), Vel: make([]mathx.Vec3, len(s.Vel))}
	copy(c.Pos, s.Pos)
	copy(c.Vel, s.Vel)
	return c
}

// stateDistance is the comparison distance: average Euclidean distance
// among the particle positions.
func stateDistance(a, b State) float64 {
	return mathx.AvgEuclidean3(a.Pos, b.Pos)
}

// Result is the final fluid condition; its Distance is the average
// Euclidean distance between particle positions (§4.2).
type Result struct {
	Final []mathx.Vec3
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	return quality.AvgParticleDistance(r.Final, ref.(Result).Final)
}

// sqrtVersion names one of the sqrt implementations the function tradeoff
// selects among.
type sqrtVersion string

const (
	sqrtExact  sqrtVersion = "exact"
	sqrtNewton sqrtVersion = "newton2"
	sqrtCoarse sqrtVersion = "newton1"
)

// apply evaluates the selected sqrt implementation.
func (v sqrtVersion) apply(x float64) float64 {
	switch v {
	case sqrtExact:
		return math.Sqrt(x)
	case sqrtNewton:
		return newtonSqrt(x, 2)
	default:
		return newtonSqrt(x, 1)
	}
}

// cost returns the implementation's relative compute cost.
func (v sqrtVersion) cost() float64 {
	switch v {
	case sqrtExact:
		return 1.0
	case sqrtNewton:
		return 0.8
	default:
		return 0.6
	}
}

func newtonSqrt(x float64, iters int) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	if g > 1 {
		g = x / 2
	}
	for i := 0; i < iters; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// params resolve the seven algorithmic tradeoffs.
type params struct {
	sqrt    sqrtVersion
	density tradeoff.Precision
	force   tradeoff.Precision
	vel     tradeoff.Precision
	prism   [3]int
}

// W is the fluidanimate workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload with Table 1's fluidanimate row.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "fluidanimate",
		OriginalLOC: 4350,
		NumDeps:     1,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("SqrtVersion", tradeoff.Function, tradeoff.Enum{
				Values: []any{sqrtCoarse, sqrtNewton, sqrtExact}, Default: 2,
			}),
			tradeoff.New("DensityPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("ForcePrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("VelocityPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("PrismX", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 4, Default: 1}),
			tradeoff.New("PrismY", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 4, Default: 1}),
			tradeoff.New("PrismZ", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 4, Default: 1}),
		},
		TradeoffLOC: [][2]int{
			{5, 10}, {5, 10}, {100, 130}, {0, 10}, {0, 30}, {0, 10}, {0, 15}, {0, 10}, {0, 10},
		},
		ComparisonLOC:     5,
		SupportsSTATS:     true, // targetable, but its aux code always aborts
		VariabilitySource: "race",
	}
}

func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	return params{
		sqrt:    ts[0].Opts.Value(idx(0)).(sqrtVersion),
		density: ts[1].Opts.Value(idx(1)).(tradeoff.Precision),
		force:   ts[2].Opts.Value(idx(2)).(tradeoff.Precision),
		vel:     ts[3].Opts.Value(idx(3)).(tradeoff.Precision),
		prism: [3]int{
			int(ts[4].Opts.Value(idx(4)).(int64)),
			int(ts[5].Opts.Value(idx(5)).(int64)),
			int(ts[6].Opts.Value(idx(6)).(int64)),
		},
	}
}

// GenSteps materializes the input frames with their stirring impulses.
func GenSteps(size int, badTraining bool) []Step {
	seed := uint64(0xF1D0)
	if badTraining {
		seed ^= 0xBAD
	}
	r := rng.New(seed)
	steps := make([]Step, size)
	for i := range steps {
		steps[i] = Step{
			Index: i,
			Impulse: mathx.Vec3{
				X: r.Norm() * 0.3,
				Y: r.Norm() * 0.3,
				Z: -0.5, // gravity-ish bias
			},
		}
	}
	return steps
}

// initialState places the particles in a block at rest.
func initialState() State {
	r := rng.New(0xF1D1)
	s := State{Pos: make([]mathx.Vec3, numParticles), Vel: make([]mathx.Vec3, numParticles)}
	for i := range s.Pos {
		s.Pos[i] = mathx.Vec3{
			X: r.Range(2, 8), Y: r.Range(4, 8), Z: r.Range(2, 8),
		}
	}
	return s
}

// simulateStep advances the fluid one frame: SPH density, pressure and
// viscosity forces, impulse, integration, wall collisions. The tiny
// randomized jitter models the accumulation-order races that make the real
// benchmark nondeterministic; jitterScale attenuates it (0 disables it —
// the oracle; <1 is the quality-boost mode averaging force evaluations).
func simulateStep(r *rng.Source, p params, s State, in Step, jitterScale float64) State {
	n := len(s.Pos)
	density := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d2 := s.Pos[i].Sub(s.Pos[j]).Dot(s.Pos[i].Sub(s.Pos[j]))
			if d2 < smoothing*smoothing {
				diff := smoothing*smoothing - d2
				density[i] += diff * diff
			}
		}
		density[i] = p.density.Quantize(density[i])
	}
	forces := make([]mathx.Vec3, n)
	for i := 0; i < n; i++ {
		var f mathx.Vec3
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			delta := s.Pos[i].Sub(s.Pos[j])
			d2 := delta.Dot(delta)
			if d2 >= smoothing*smoothing || d2 == 0 {
				continue
			}
			dist := p.sqrt.apply(d2)
			// Pressure-like repulsion plus viscosity damping.
			push := (smoothing - dist) / dist * 0.02 * (density[i] + density[j])
			f = f.Add(delta.Scale(push))
			f = f.Add(s.Vel[j].Sub(s.Vel[i]).Scale(0.01))
		}
		f = f.Add(in.Impulse)
		// Race-condition jitter: the order force contributions commit
		// in the parallel original varies run to run.
		f = f.Add(mathx.Vec3{X: r.Norm(), Y: r.Norm(), Z: r.Norm()}.Scale(0.002 * jitterScale))
		forces[i] = mathx.Vec3{
			X: p.force.Quantize(f.X), Y: p.force.Quantize(f.Y), Z: p.force.Quantize(f.Z),
		}
	}
	next := cloneState(s)
	for i := 0; i < n; i++ {
		v := s.Vel[i].Add(forces[i].Scale(dt))
		v = mathx.Vec3{X: p.vel.Quantize(v.X), Y: p.vel.Quantize(v.Y), Z: p.vel.Quantize(v.Z)}
		pos := s.Pos[i].Add(v.Scale(dt))
		// Walls: clamp and reflect.
		if pos.X < 0 || pos.X > boxSize {
			v.X = -0.5 * v.X
		}
		if pos.Y < 0 || pos.Y > boxSize {
			v.Y = -0.5 * v.Y
		}
		if pos.Z < 0 || pos.Z > boxSize {
			v.Z = -0.5 * v.Z
		}
		next.Pos[i] = pos.Clamp(0, boxSize)
		next.Vel[i] = v
	}
	return next
}

// computeOutput advances the fluid one frame and emits the frame's mean
// particle position (the rendered output).
func computeOutput(p params) core.Compute[Step, State, mathx.Vec3] {
	return func(r *rng.Source, in Step, s State) (mathx.Vec3, State) {
		s = simulateStep(r, p, s, in, 1)
		var mean mathx.Vec3
		for _, pos := range s.Pos {
			mean = mean.Add(pos)
		}
		return mean.Scale(1 / float64(len(s.Pos))), s
	}
}

// auxCode is the doomed alternative producer: replay only the window's
// recent steps from the initial state. Because the fluid's condition
// depends on *all* previous steps, the speculative state it produces never
// matches an original state — exactly the paper's negative result.
func auxCode(p params) core.Aux[Step, State] {
	return func(r *rng.Source, init State, recent []Step) State {
		s := cloneState(init)
		for _, in := range recent {
			s = simulateStep(r, p, s, in, 1)
		}
		return s
	}
}

func stateOps() core.StateOps[State] {
	return core.StateOps[State]{
		Clone: cloneState,
		MatchAny: func(spec State, originals []State) bool {
			for i := range originals {
				di := stateDistance(spec, originals[i])
				for j := range originals {
					if i == j {
						continue
					}
					if di <= stateDistance(originals[j], originals[i]) {
						return true
					}
				}
			}
			return false
		},
		// Acceptance triangulates a continuous particle-position
		// distance, so positions and velocities cannot enter the hash;
		// the particle count is the one structural feature every state
		// of a run shares (the auxiliary producer simulates the same
		// fluid, never resizes it). Within a run the prefilter always
		// falls through; a cross-run size mismatch would reject without
		// the O(particles) deep comparison.
		Fingerprint: func(s State) uint64 {
			return mathx.NewHash64().Int(len(s.Pos)).Sum()
		},
	}
}

// RunOriginal implements workload.Workload.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), 1, false)
}

func (w *W) run(seed uint64, size int, p params, noiseScale float64, badTraining bool) Result {
	steps := GenSteps(size, badTraining)
	r := rng.New(seed)
	s := initialState()
	for _, in := range steps {
		s = simulateStep(r.Split(), p, s, in, noiseScale)
	}
	return Result{Final: s.Pos}
}

// RunOracle implements workload.Workload: exact sqrt, double precision, no
// race jitter, fixed seed.
func (w *W) RunOracle(size int) workload.Result {
	p := params{sqrt: sqrtExact, density: tradeoff.Double, force: tradeoff.Double, vel: tradeoff.Double, prism: [3]int{2, 2, 2}}
	return w.run(0x0AC1E, size, p, 0, false)
}

// RunBoosted implements workload.Workload (Fig. 16): averaging factor×
// force evaluations attenuates the race jitter by sqrt(factor).
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	if factor < 1 {
		factor = 1
	}
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), 1/math.Sqrt(factor), false)
}

// RunSTATS implements workload.Workload. Under core.ProtocolReservations
// the box is split into numFluids non-interacting sub-fluids advanced as
// a step-major flat chain with one state slot per sub-fluid (see
// SplitDependence): the window-replay aux code is hopeless here (§4.8),
// but slot reservations need no aux code and the sub-fluids' disjoint
// footprints commit in the same round.
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	if o.Protocol == core.ProtocolReservations {
		return runSplit(seed, size, def, o)
	}
	aux := w.resolve(o, false)
	steps := GenSteps(size, o.BadTraining)
	dep := core.New(computeOutput(def), auxCode(aux), stateOps())
	_, final, st := dep.Run(steps, initialState(), o.CoreOptions(seed))
	return Result{Final: final.Pos}, st
}

// numFluids is the slot count of the reservations formulation: the box
// is partitioned into this many non-interacting sub-fluids, each its own
// state slot.
const numFluids = 4

// FlatStep is one (frame, sub-fluid) cell of the step-major chain the
// reservations protocol simulates: sequential order walks the sub-fluids
// within a frame, so cells of the same frame touch disjoint slots.
type FlatStep struct {
	Step  Step
	Fluid int
}

// FlatSteps materializes the step-major chain over the frames.
func FlatSteps(steps []Step) []FlatStep {
	cells := make([]FlatStep, 0, len(steps)*numFluids)
	for _, in := range steps {
		for k := 0; k < numFluids; k++ {
			cells = append(cells, FlatStep{Step: in, Fluid: k})
		}
	}
	return cells
}

// subInitial places one sub-fluid's particles at rest, seeded per fluid.
func subInitial(k int) State {
	r := rng.New(0xF1D1 + uint64(k)*0x9E37)
	n := numParticles / numFluids
	s := State{Pos: make([]mathx.Vec3, n), Vel: make([]mathx.Vec3, n)}
	for i := range s.Pos {
		s.Pos[i] = mathx.Vec3{
			X: r.Range(2, 8), Y: r.Range(4, 8), Z: r.Range(2, 8),
		}
	}
	return s
}

// statesEqual compares two sub-fluid states structurally (the Touched
// oracle hook needs a value diff).
func statesEqual(a, b State) bool {
	if len(a.Pos) != len(b.Pos) || len(a.Vel) != len(b.Vel) {
		return false
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			return false
		}
	}
	for i := range a.Vel {
		if a.Vel[i] != b.Vel[i] {
			return false
		}
	}
	return true
}

// SplitDependence builds the reservation-ready dependence: state is one
// sub-fluid per slot, a cell's footprint is exactly its fluid's slot,
// and Merge copies the winner's slot.
func SplitDependence(o workload.SpecOptions) *core.Dependence[FlatStep, []State, mathx.Vec3] {
	return splitDependence((&W{}).resolve(o, true))
}

func splitDependence(p params) *core.Dependence[FlatStep, []State, mathx.Vec3] {
	compute := func(r *rng.Source, in FlatStep, st []State) (mathx.Vec3, []State) {
		s := simulateStep(r, p, st[in.Fluid], in.Step, 1)
		st[in.Fluid] = s
		var mean mathx.Vec3
		for _, pos := range s.Pos {
			mean = mean.Add(pos)
		}
		return mean.Scale(1 / float64(len(s.Pos))), st
	}
	ops := core.StateOps[[]State]{
		Clone: func(s []State) []State {
			cp := make([]State, len(s))
			for i := range s {
				cp[i] = cloneState(s[i])
			}
			return cp
		},
	}
	dep := core.New[FlatStep, []State, mathx.Vec3](compute, nil, ops)
	return dep.WithReserve(core.ReserveOps[FlatStep, []State]{
		NumSlots:  func(initial []State) int { return len(initial) },
		Footprint: func(in FlatStep, _ []State) []int { return []int{in.Fluid} },
		Merge: func(dst, src []State, slots []int) []State {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
		Touched: func(before, after []State) []int {
			var touched []int
			for i := range before {
				if i < len(after) && !statesEqual(before[i], after[i]) {
					touched = append(touched, i)
				}
			}
			return touched
		},
	})
}

// runSplit advances the sub-fluids through one reservations engine run
// over the step-major chain; the final particle set is the concatenation
// of the sub-fluids'.
func runSplit(seed uint64, size int, p params, o workload.SpecOptions) (workload.Result, core.Stats) {
	steps := GenSteps(size, o.BadTraining)
	init := make([]State, numFluids)
	for k := range init {
		init[k] = subInitial(k)
	}
	dep := splitDependence(p)
	_, final, st := dep.Run(FlatSteps(steps), init, o.CoreOptions(seed))
	var all []mathx.Vec3
	for _, s := range final {
		all = append(all, s.Pos...)
	}
	return Result{Final: all}, st
}

// CostModel implements workload.Workload. The original program parallelizes
// well over spatial prisms (wide, small serial fraction); speculation never
// survives validation (MatchProb 0), so STATS's best configuration is the
// original TLP — the Fig. 12d flat line.
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		prec := (p.density.CostFactor() + p.force.CostFactor() + p.vel.CostFactor()) / 3
		return prec * p.sqrt.cost()
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	prismCells := def.prism[0] * def.prism[1] * def.prism[2]
	width := 8 * prismCells
	if width > 64 {
		width = 64
	}
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  unit(def),
		AuxWork:         float64(win) * unit(aux),
		InnerWidth:      width,
		InnerSerialFrac: 0.03,
		SyncWork:        0.02,
		ValidateWork:    0.01,
		MatchProb:       0, // the aux state never matches (§4.8)
		RedoGain:        0,
	}
}
