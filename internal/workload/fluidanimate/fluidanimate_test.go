package fluidanimate

import (
	"testing"

	"repro/internal/workload"
)

func TestInputsFixed(t *testing.T) {
	a, b := GenSteps(10, false), GenSteps(10, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestParticlesStayInBox(t *testing.T) {
	w := New()
	res := w.RunOriginal(1, 30).(Result)
	for i, p := range res.Final {
		if p.X < 0 || p.X > boxSize || p.Y < 0 || p.Y > boxSize || p.Z < 0 || p.Z > boxSize {
			t.Fatalf("particle %d escaped: %+v", i, p)
		}
	}
}

func TestFluidEvolves(t *testing.T) {
	w := New()
	short := w.RunOriginal(1, 2).(Result)
	long := w.RunOriginal(1, 30).(Result)
	if short.Distance(long) == 0 {
		t.Fatal("fluid did not evolve between 2 and 30 steps")
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	if w.RunOriginal(1, 20).Distance(w.RunOriginal(2, 20)) == 0 {
		t.Fatal("identical outputs across seeds")
	}
}

func TestOracleDeterministic(t *testing.T) {
	w := New()
	if w.RunOracle(15).Distance(w.RunOracle(15)) != 0 {
		t.Fatal("oracle not deterministic")
	}
}

func TestBoostedReducesJitterEffect(t *testing.T) {
	w := New()
	oracle := w.RunOracle(20)
	var base, boosted float64
	for seed := uint64(0); seed < 5; seed++ {
		base += w.RunOriginal(seed, 20).Distance(oracle)
		boosted += w.RunBoosted(seed, 20, 16).Distance(oracle)
	}
	if boosted >= base {
		t.Fatalf("boost did not help: %v vs %v", boosted, base)
	}
}

func TestSpeculationAlwaysAborts(t *testing.T) {
	// §4.8: "every time the main state dependence of fluidanimate was
	// satisfied with auxiliary code, the STATS runtime aborted". The
	// time-step chain does not forget, so the aux state never matches.
	w := New()
	for seed := uint64(0); seed < 5; seed++ {
		_, st := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 2, Rollback: 2, Workers: 4,
		})
		if st.Aborts == 0 {
			t.Fatalf("seed %d: speculation survived (stats %+v)", seed, st)
		}
		if st.Matches != 0 {
			t.Fatalf("seed %d: unexpected match (stats %+v)", seed, st)
		}
	}
}

func TestSTATSOutputStillCorrect(t *testing.T) {
	// Despite the aborts, the fallback must preserve output quality.
	w := New()
	oracle := w.RunOracle(20)
	var maxOrig float64
	for seed := uint64(0); seed < 4; seed++ {
		if d := w.RunOriginal(seed, 20).Distance(oracle); d > maxOrig {
			maxOrig = d
		}
	}
	res, _ := w.RunSTATS(9, 20, workload.SpecOptions{
		UseAux: true, GroupSize: 5, Window: 3, RedoMax: 1, Rollback: 2, Workers: 4,
	})
	if d := res.Distance(oracle); d > 3*maxOrig {
		t.Fatalf("fallback output too far from oracle: %v vs band %v", d, maxOrig)
	}
}

func TestSqrtVersions(t *testing.T) {
	for _, x := range []float64{0.25, 1, 2, 9, 100} {
		exact := sqrtExact.apply(x)
		n2 := sqrtNewton.apply(x)
		n1 := sqrtCoarse.apply(x)
		e2 := abs(n2 - exact)
		e1 := abs(n1 - exact)
		if e2 > e1+1e-12 {
			t.Fatalf("newton2 worse than newton1 at %v: %v vs %v", x, e2, e1)
		}
	}
	if sqrtCoarse.apply(0) != 0 || sqrtNewton.apply(-1) != 0 {
		t.Fatal("non-positive inputs")
	}
	if !(sqrtCoarse.cost() < sqrtNewton.cost() && sqrtNewton.cost() < sqrtExact.cost()) {
		t.Fatal("sqrt costs must be ordered")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDescriptor(t *testing.T) {
	d := New().Desc()
	if d.Name != "fluidanimate" || len(d.TradeoffLOC) != 9 || len(d.Tradeoffs) != 7 {
		t.Fatal("descriptor")
	}
	if d.ComparisonLOC != 5 {
		t.Fatal("comparison LOC")
	}
}

func TestCostModelNeverMatches(t *testing.T) {
	m := New().CostModel(30, workload.SpecOptions{Window: 4})
	if m.MatchProb != 0 {
		t.Fatalf("fluidanimate must never match: %v", m.MatchProb)
	}
	if m.InnerWidth < 8 {
		t.Fatalf("original TLP should be wide: %d", m.InnerWidth)
	}
	if m.InvocationWork != 1 {
		t.Fatalf("default work: %v", m.InvocationWork)
	}
}
