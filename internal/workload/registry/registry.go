// Package registry enumerates the benchmark reproductions in the paper's
// order, so the harness, CLIs and benches iterate over one canonical list.
package registry

import (
	"fmt"

	"repro/internal/workload"
	"repro/internal/workload/bodytrack"
	"repro/internal/workload/canneal"
	"repro/internal/workload/facedet"
	"repro/internal/workload/fluidanimate"
	"repro/internal/workload/streamclassifier"
	"repro/internal/workload/streamcluster"
	"repro/internal/workload/swaptions"
)

// Targets returns the six STATS targets in the order the paper's figures
// list them (swaptions, streamclassifier, streamcluster, fluidanimate,
// bodytrack, facedet).
func Targets() []workload.Workload {
	return []workload.Workload{
		swaptions.New(),
		streamclassifier.New(),
		streamcluster.New(),
		fluidanimate.New(),
		bodytrack.New(),
		facedet.New(),
	}
}

// All returns the targets plus canneal (the statically rejected benchmark,
// still part of the Fig. 2 variability study).
func All() []workload.Workload {
	return append(Targets(), canneal.New())
}

// ByName returns the named workload.
func ByName(name string) (workload.Workload, error) {
	for _, w := range All() {
		if w.Desc().Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("registry: unknown workload %q", name)
}

// Names returns all workload names.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Desc().Name)
	}
	return out
}
