package swaptions

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func rngFor(seed uint64) *rng.Source { return rng.New(seed) }

func TestPortfolioFixedAcrossRuns(t *testing.T) {
	a := portfolio(10, false)
	b := portfolio(10, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instrument %d differs", i)
		}
	}
}

func TestBadTrainingParametersUnrealistic(t *testing.T) {
	good := portfolio(5, false)
	bad := portfolio(5, true)
	if bad[0].Maturity <= good[0].Maturity {
		t.Fatal("bad-training maturities should be implausibly long")
	}
	if bad[0].Strike <= good[0].Strike {
		t.Fatal("bad-training strikes should be far out of market")
	}
}

func TestPricesPositiveAndFinite(t *testing.T) {
	w := New()
	res := w.RunOriginal(1, 16).(Result)
	if len(res.Prices) != realRunSwaptions {
		t.Fatalf("prices: %d", len(res.Prices))
	}
	for i, p := range res.Prices {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("price %d = %v", i, p)
		}
	}
}

func TestMonteCarloConverges(t *testing.T) {
	// More trials bring the estimate closer to the oracle.
	w := New()
	oracle := w.RunOracle(16)
	var base, boosted float64
	for seed := uint64(0); seed < 5; seed++ {
		base += w.RunOriginal(seed, 16).Distance(oracle)
		boosted += w.RunBoosted(seed, 16, 8).Distance(oracle)
	}
	if boosted >= base {
		t.Fatalf("8x trials did not converge: base %v, boosted %v", base, boosted)
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	a := w.RunOriginal(1, 8)
	b := w.RunOriginal(2, 8)
	if a.Distance(b) == 0 {
		t.Fatal("identical prices across seeds")
	}
}

func TestVariabilityIsLow(t *testing.T) {
	// swaptions has the lowest output variability in Fig. 2; with
	// 16 blocks × 64 trials the relative spread should be small.
	w := New()
	oracle := w.RunOracle(16)
	for seed := uint64(0); seed < 4; seed++ {
		d := w.RunOriginal(seed, 16).Distance(oracle)
		if d > 0.2 {
			t.Fatalf("seed %d: relative price difference %v too large", seed, d)
		}
	}
}

func TestSTATSAlwaysCommits(t *testing.T) {
	// By-construction acceptance: no comparison function, no aborts.
	w := New()
	res, st := w.RunSTATS(3, 16, workload.SpecOptions{
		UseAux: true, GroupSize: 4, Window: 2, Workers: 4,
	})
	if st.Aborts != 0 {
		t.Fatalf("aborts: %d", st.Aborts)
	}
	if st.Matches == 0 {
		t.Fatal("no speculative commits")
	}
	if len(res.(Result).Prices) != realRunSwaptions {
		t.Fatal("missing prices")
	}
}

func TestSTATSPreservesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(16)
	var orig, stats float64
	for seed := uint64(0); seed < 5; seed++ {
		orig += w.RunOriginal(seed, 16).Distance(oracle)
		res, _ := w.RunSTATS(seed, 16, workload.SpecOptions{
			UseAux: true, GroupSize: 4, Window: 3, Workers: 4,
		})
		stats += res.Distance(oracle)
	}
	// The speculative prefix substitutes a window-sized estimate for the
	// earlier blocks, so allow a modest factor over the original spread.
	if stats > 4*orig {
		t.Fatalf("STATS quality loss too large: %v vs original %v", stats, orig)
	}
}

func TestAuxCountsTrialsCorrectly(t *testing.T) {
	s := portfolio(1, false)[0]
	p := params{pathPrec: 2, discPrec: 2}
	aux := auxCode(s, p)
	st := aux(rngFor(1), PriceState{}, []Block{{Index: 6}, {Index: 7}})
	// The following group starts at block 8: 8*trialsPerBlock trials.
	if st.Count != float64(8*trialsPerBlock) {
		t.Fatalf("aux count: %v", st.Count)
	}
	if st.Mean() <= 0 {
		t.Fatalf("aux mean: %v", st.Mean())
	}
}

func TestAuxEmptyWindowReturnsInit(t *testing.T) {
	s := portfolio(1, false)[0]
	aux := auxCode(s, params{pathPrec: 2, discPrec: 2})
	init := PriceState{Sum: 5, Count: 2}
	if got := aux(rngFor(1), init, nil); got != init {
		t.Fatalf("aux with empty window: %+v", got)
	}
}

func TestCostModelOuterParallel(t *testing.T) {
	w := New()
	m := w.CostModel(20, workload.SpecOptions{Window: 2})
	if !m.OuterParallel || m.OuterTasks != 34 {
		t.Fatalf("outer model: %+v", m)
	}
	if m.MatchProb != 1 {
		t.Fatalf("match prob: %v", m.MatchProb)
	}
	if m.InvocationWork != 1 {
		t.Fatalf("default work: %v", m.InvocationWork)
	}
	// Half precision on both variables must be cheaper.
	cheap := w.CostModel(20, workload.SpecOptions{Window: 2, TradeoffIdx: []int64{0, 0}})
	if cheap.AuxWork >= m.AuxWork {
		t.Fatal("cheap precisions not cheaper")
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Desc()
	if d.Name != "swaptions" || !d.SupportsSTATS {
		t.Fatal("basics")
	}
	if len(d.TradeoffLOC) != 4 || len(d.Tradeoffs) != 2 {
		t.Fatalf("tradeoff counts: %d LOC cols, %d algorithmic", len(d.TradeoffLOC), len(d.Tradeoffs))
	}
	if d.ComparisonLOC != 0 {
		t.Fatal("swaptions needs no comparison function")
	}
}

func TestPriceStateMean(t *testing.T) {
	if (PriceState{}).Mean() != 0 {
		t.Fatal("empty mean")
	}
	if (PriceState{Sum: 10, Count: 4}).Mean() != 2.5 {
		t.Fatal("mean")
	}
}
