// Package swaptions reproduces the PARSEC swaptions benchmark (§4.2): a
// portfolio of swaptions priced by Monte Carlo simulation of an HJM-style
// interest-rate model. The simulation of one swaption is sequential: its
// state — the running price estimate — is updated by every block of
// simulated trials, which is the state dependence. Across swaptions the
// program is embarrassingly parallel (the original TLP); the paper shrinks
// the native input to 34 swaptions so this outer parallelism saturates a
// 28-core machine and the bottleneck becomes visible.
//
// Tradeoffs (§4.2): the data types of two values used during the Monte
// Carlo simulation (path arithmetic and discounting precision).
//
// The speculative state needs no comparison function: a price estimate
// extrapolated from a window of trial blocks is, by construction, a state
// some execution of the nondeterministic original producer could have
// generated (§4.2: "the speculative state could have already been generated
// by an execution of the original program").
package swaptions

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
)

// trialsPerBlock is the number of Monte Carlo paths one input block
// contributes to a swaption's estimate.
const trialsPerBlock = 64

// pathSteps is the number of time steps per simulated rate path.
const pathSteps = 16

// numSwaptions matches the paper's reduced native input ("34 swaptions
// rather than 128").
const numSwaptions = 34

// realRunSwaptions bounds how many swaptions the real-execution paths price
// (quality experiments need the distribution, not the full portfolio).
const realRunSwaptions = 6

// Swaption is one instrument's parameters.
type Swaption struct {
	Strike   float64
	Maturity float64
	Tenor    float64
	Vol      float64
	Rate     float64
}

// Block is one input of the state-dependence chain: the Index lets the
// auxiliary code know how many trials precede a group, which is how the
// runtime can know the input count up front (unlike canneal).
type Block struct {
	Index int
}

// PriceState is the running Monte Carlo estimate: the state of Figure 4.
type PriceState struct {
	Sum   float64
	Count float64
}

// Mean returns the current price estimate.
func (s PriceState) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Result is the priced portfolio; its Distance is the average relative
// price difference (§4.2).
type Result struct {
	Prices []float64
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	return quality.AvgRelativePriceDiff(r.Prices, ref.(Result).Prices)
}

// params resolve the two precision tradeoffs.
type params struct {
	pathPrec tradeoff.Precision
	discPrec tradeoff.Precision
}

// W is the swaptions workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload with Table 1's swaptions row.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "swaptions",
		OriginalLOC: 1120,
		NumDeps:     1,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("PathPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("DiscountPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
		},
		TradeoffLOC:          [][2]int{{10, 15}, {20, 120}, {3, 9}, {3, 9}},
		ComparisonLOC:        0, // no comparison function needed
		ScalarReductionState: true,
		SafeToBreak:          true,
		SupportsSTATS:        true,
		VariabilitySource:    "prvg",
	}
}

func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	return params{
		pathPrec: ts[0].Opts.Value(idx(0)).(tradeoff.Precision),
		discPrec: ts[1].Opts.Value(idx(1)).(tradeoff.Precision),
	}
}

// Portfolio materializes the fixed input instruments. badTraining produces
// the §4.6 variant: "unrealistic swaption parameters like market strikes
// and maturity dates".
func Portfolio(n int, badTraining bool) []Swaption {
	return portfolio(n, badTraining)
}

func portfolio(n int, badTraining bool) []Swaption {
	seed := uint64(0x53A9)
	if badTraining {
		seed ^= 0xBAD
	}
	r := rng.New(seed)
	out := make([]Swaption, n)
	for i := range out {
		if badTraining {
			out[i] = Swaption{
				Strike:   0.90 + r.Float64()*0.5, // far out of market
				Maturity: 40 + r.Float64()*20,    // implausibly long-dated
				Tenor:    0.1,
				Vol:      0.95,
				Rate:     0.001,
			}
			continue
		}
		out[i] = Swaption{
			Strike:   0.010 + r.Float64()*0.010,
			Maturity: 1 + r.Float64()*9,
			Tenor:    1 + r.Float64()*4,
			Vol:      0.1 + r.Float64()*0.2,
			Rate:     0.030 + r.Float64()*0.030,
		}
	}
	return out
}

// hjmFactors is the number of stochastic factors driving the forward
// curve (the HJM framework the benchmark's pricer implements).
const hjmFactors = 2

// simulateTrial prices one payoff sample under a two-factor HJM forward
// model: a parallel-shift factor moving the whole curve and a twist factor
// whose effect grows along the tenor. The payoff is the positive part of
// the average forward over the underlying swap's tenor against the strike,
// discounted along the realized short-rate path. The two precision
// tradeoffs quantize the path arithmetic and the discounting.
func simulateTrial(r *rng.Source, s Swaption, p params) float64 {
	dt := s.Maturity / pathSteps
	// Forward curve sampled at four tenor points across the swap.
	const curvePoints = 4
	var fwd [curvePoints]float64
	for k := range fwd {
		fwd[k] = s.Rate
	}
	// Factor volatilities: the shift carries most of the variance, the
	// twist tilts the curve.
	shiftVol := s.Vol * 0.85
	twistVol := s.Vol * 0.55
	discountExp := 0.0
	for i := 0; i < pathSteps; i++ {
		var z [hjmFactors]float64
		for f := range z {
			z[f] = r.Norm()
		}
		// The short end of the curve discounts the payoff.
		discountExp += fwd[0] * dt
		for k := range fwd {
			tilt := (float64(k)/(curvePoints-1) - 0.5) * 2 // -1..1 along the tenor
			drift := -0.5 * (shiftVol*shiftVol + twistVol*twistVol*tilt*tilt) * dt
			diffusion := shiftVol*math.Sqrt(dt)*z[0] + twistVol*tilt*math.Sqrt(dt)*z[1]
			fwd[k] *= math.Exp(p.pathPrec.Quantize(drift + diffusion))
			fwd[k] = p.pathPrec.Quantize(fwd[k])
		}
	}
	// Swap rate at expiry: the average forward across the tenor points.
	swapRate := 0.0
	for _, f := range fwd {
		swapRate += f
	}
	swapRate /= curvePoints
	payoff := swapRate - s.Strike
	if payoff < 0 {
		payoff = 0
	}
	discount := p.discPrec.Quantize(math.Exp(-discountExp))
	return p.discPrec.Quantize(payoff * discount * s.Tenor * 100)
}

// computeOutput is the state-dependence target: consume one block of
// trials, update the running estimate, emit the current price.
func computeOutput(s Swaption, p params) core.Compute[Block, PriceState, float64] {
	return func(r *rng.Source, _ Block, st PriceState) (float64, PriceState) {
		for t := 0; t < trialsPerBlock; t++ {
			st.Sum += simulateTrial(r, s, p)
		}
		st.Count += trialsPerBlock
		return st.Mean(), st
	}
}

// auxCode extrapolates the running estimate: simulate the window's blocks
// at the auxiliary precisions, then scale the estimated mean to the trial
// count the group expects. The block indices tell it how many trials the
// prefix holds.
func auxCode(s Swaption, p params) core.Aux[Block, PriceState] {
	return func(r *rng.Source, init PriceState, recent []Block) PriceState {
		if len(recent) == 0 {
			return init
		}
		sum := 0.0
		n := 0
		for range recent {
			for t := 0; t < trialsPerBlock; t++ {
				sum += simulateTrial(r, s, p)
				n++
			}
		}
		// The group following `recent` starts after block lastIndex+1,
		// i.e. with (lastIndex+1)*trialsPerBlock trials accumulated.
		count := float64(recent[len(recent)-1].Index+1) * trialsPerBlock
		mean := sum / float64(n)
		return PriceState{Sum: init.Sum + mean*count, Count: init.Count + count}
	}
}

// stateOps: value clone, by-construction acceptance (nil MatchAny).
// Without a MatchAny the engine never consults the fingerprint (states
// are accepted by construction); it documents the state's identity
// features and keeps the hash-first wiring uniform across the suite.
func stateOps() core.StateOps[PriceState] {
	return core.StateOps[PriceState]{
		Clone: func(s PriceState) PriceState { return s },
		Fingerprint: func(s PriceState) uint64 {
			return mathx.NewHash64().Float(s.Sum).Float(s.Count).Sum()
		},
	}
}

func blocks(size int) []Block {
	bs := make([]Block, size)
	for i := range bs {
		bs[i] = Block{Index: i}
	}
	return bs
}

// RunOriginal implements workload.Workload: sequentially price the
// real-run portfolio slice.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), 1, false)
}

func (w *W) run(seed uint64, size int, p params, trialScale float64, badTraining bool) Result {
	instruments := portfolio(numSwaptions, badTraining)[:realRunSwaptions]
	root := rng.New(seed)
	res := Result{Prices: make([]float64, len(instruments))}
	nBlocks := int(float64(size) * trialScale)
	if nBlocks < 1 {
		nBlocks = 1
	}
	for i, s := range instruments {
		compute := computeOutput(s, p)
		st := PriceState{}
		r := root.Split()
		var price float64
		for _, b := range blocks(nBlocks) {
			price, st = compute(r.Split(), b, st)
		}
		res.Prices[i] = price
	}
	return res
}

// RunOracle implements workload.Workload: full double precision with 16×
// the trials, fixed seed.
func (w *W) RunOracle(size int) workload.Result {
	return w.run(0x0AC1E, size, params{pathPrec: tradeoff.Double, discPrec: tradeoff.Double}, 16, false)
}

// RunBoosted implements workload.Workload: factor× more trials (Fig. 16).
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	if factor < 1 {
		factor = 1
	}
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), factor, false)
}

// RunSTATS implements workload.Workload: each swaption's block chain runs
// through the core engine; statistics aggregate across instruments. Under
// core.ProtocolReservations the six chains are interleaved into one
// block-major flat chain with one state slot per instrument (see
// flatDependence), so the protocol's slot footprints expose the
// portfolio's outer parallelism inside a single engine run.
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	instruments := portfolio(numSwaptions, o.BadTraining)[:realRunSwaptions]
	if o.Protocol == core.ProtocolReservations {
		return runFlat(seed, size, instruments, def, o)
	}
	res := Result{Prices: make([]float64, len(instruments))}
	var agg core.Stats
	for i, s := range instruments {
		dep := core.New(computeOutput(s, def), auxCode(s, aux), stateOps())
		outs, _, st := dep.Run(blocks(size), PriceState{}, o.CoreOptions(seed+uint64(i)*0x9E37))
		res.Prices[i] = outs[len(outs)-1]
		addStats(&agg, st)
	}
	return res, agg
}

// FlatBlock is one (block, instrument) cell of the block-major chain the
// reservations protocol prices: sequential order walks instruments within
// a block, then advances to the next block, so cells of the same block
// touch disjoint slots and commit in the same round.
type FlatBlock struct {
	Block int
	Inst  int
}

// FlatDependence builds the reservation-ready dependence over the
// portfolio: state is one PriceState per instrument, a cell's footprint
// is exactly its instrument's slot, and Merge copies the winner's slot.
func FlatDependence(instruments []Swaption, o workload.SpecOptions) *core.Dependence[FlatBlock, []PriceState, float64] {
	return flatDependence(instruments, params{pathPrec: tradeoff.Double, discPrec: tradeoff.Double}, o)
}

func flatDependence(instruments []Swaption, p params, o workload.SpecOptions) *core.Dependence[FlatBlock, []PriceState, float64] {
	compute := func(r *rng.Source, in FlatBlock, st []PriceState) (float64, []PriceState) {
		s := instruments[in.Inst]
		cell := st[in.Inst]
		for t := 0; t < trialsPerBlock; t++ {
			cell.Sum += simulateTrial(r, s, p)
		}
		cell.Count += trialsPerBlock
		st[in.Inst] = cell
		return cell.Mean(), st
	}
	ops := core.StateOps[[]PriceState]{
		Clone: func(s []PriceState) []PriceState {
			cp := make([]PriceState, len(s))
			copy(cp, s)
			return cp
		},
	}
	dep := core.New[FlatBlock, []PriceState, float64](compute, nil, ops)
	return dep.WithReserve(core.ReserveOps[FlatBlock, []PriceState]{
		NumSlots:  func(initial []PriceState) int { return len(initial) },
		Footprint: func(in FlatBlock, _ []PriceState) []int { return []int{in.Inst} },
		Merge: func(dst, src []PriceState, slots []int) []PriceState {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
		Touched: func(before, after []PriceState) []int {
			var touched []int
			for i := range before {
				if i < len(after) && before[i] != after[i] {
					touched = append(touched, i)
				}
			}
			return touched
		},
	})
}

// FlatBlocks materializes the block-major chain for nBlocks blocks over k
// instruments.
func FlatBlocks(nBlocks, k int) []FlatBlock {
	cells := make([]FlatBlock, 0, nBlocks*k)
	for b := 0; b < nBlocks; b++ {
		for i := 0; i < k; i++ {
			cells = append(cells, FlatBlock{Block: b, Inst: i})
		}
	}
	return cells
}

// runFlat prices the portfolio through one reservations engine run over
// the block-major chain. The last block's row of outputs holds the final
// per-instrument prices.
func runFlat(seed uint64, size int, instruments []Swaption, p params, o workload.SpecOptions) (workload.Result, core.Stats) {
	k := len(instruments)
	dep := flatDependence(instruments, p, o)
	outs, _, st := dep.Run(FlatBlocks(size, k), make([]PriceState, k), o.CoreOptions(seed))
	res := Result{Prices: make([]float64, k)}
	copy(res.Prices, outs[(size-1)*k:])
	return res, st
}

func addStats(agg *core.Stats, st core.Stats) {
	agg.Inputs += st.Inputs
	agg.Groups += st.Groups
	agg.Matches += st.Matches
	agg.Redos += st.Redos
	agg.Aborts += st.Aborts
	agg.SpeculativeCommits += st.SpeculativeCommits
	agg.SquashedInputs += st.SquashedInputs
	agg.FallbackInputs += st.FallbackInputs
	agg.Invocations += st.Invocations
	agg.UsefulInvocations += st.UsefulInvocations
	agg.AuxCalls += st.AuxCalls
	agg.AuxInputs += st.AuxInputs
	agg.PanickedGroups += st.PanickedGroups
	agg.TimedOutGroups += st.TimedOutGroups
	agg.BreakerDenied += st.BreakerDenied
	agg.Rounds += st.Rounds
	agg.ReservationConflicts += st.ReservationConflicts
	agg.FootprintViolations += st.FootprintViolations
}

// CostModel implements workload.Workload. One default-precision block is
// one work unit; the original TLP is the outer loop over 34 swaptions with
// no inner parallelism — exactly the structure that caps the original at
// ceil(34/threads) waves.
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		return 0.5*p.pathPrec.CostFactor() + 0.5*p.discPrec.CostFactor()
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  unit(def),
		AuxWork:         float64(win) * unit(aux),
		InnerWidth:      1,
		InnerSerialFrac: 1,
		SyncWork:        0,
		ValidateWork:    0.001,
		OuterParallel:   true,
		OuterTasks:      numSwaptions,
		// By-construction acceptance: speculation always commits.
		MatchProb: 1,
		RedoGain:  0,
	}
}
