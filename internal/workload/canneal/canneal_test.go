package canneal

import (
	"testing"

	"repro/internal/workload"
)

func TestAnnealingReducesCost(t *testing.T) {
	nl := genNetlist(16)
	cells := make(placement, nl.n)
	perm := make([]int, nl.n)
	for i := range perm {
		perm[i] = i
	}
	copy(cells, perm)
	initial := cells.cost(nl)
	res := New().RunOriginal(1, 16).(Result)
	if res.Cost >= initial {
		t.Fatalf("annealing did not improve cost: %v vs initial %v", res.Cost, initial)
	}
}

func TestStepsVaryWithState(t *testing.T) {
	// The temperature-step count depends on the run's evolution — the
	// very reason STATS rejects canneal. Across seeds it must vary (or
	// at least be convergence-determined, not schedule-determined).
	w := New()
	steps := map[int]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		steps[w.RunOriginal(seed, 16).(Result).Steps] = true
	}
	if len(steps) < 2 {
		t.Log("step counts identical across seeds; convergence exit may still dominate")
	}
	// The schedule alone (8.0 * 0.8^k <= 0.05) would give a fixed 23
	// steps; convergence exits earlier.
	for s := range steps {
		if s >= 23 {
			t.Fatalf("run hit the schedule bound (%d steps); convergence exit broken", s)
		}
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	if w.RunOriginal(1, 16).Distance(w.RunOriginal(2, 16)) == 0 {
		t.Fatal("identical costs across seeds")
	}
}

func TestOracleBetterThanOriginal(t *testing.T) {
	w := New()
	oracle := w.RunOracle(16).(Result)
	orig := w.RunOriginal(1, 16).(Result)
	if oracle.Cost > orig.Cost {
		t.Fatalf("oracle cost %v worse than original %v", oracle.Cost, orig.Cost)
	}
}

func TestBoostedImproves(t *testing.T) {
	w := New()
	var base, boosted float64
	for seed := uint64(0); seed < 4; seed++ {
		base += w.RunOriginal(seed, 16).(Result).Cost
		boosted += w.RunBoosted(seed, 16, 6).(Result).Cost
	}
	if boosted >= base {
		t.Fatalf("boost did not help: %v vs %v", boosted, base)
	}
}

func TestStaticallyRejected(t *testing.T) {
	d := New().Desc()
	if d.SupportsSTATS {
		t.Fatal("canneal must be rejected")
	}
	if d.RejectReason == "" {
		t.Fatal("rejection must carry a reason")
	}
	res, st := New().RunSTATS(1, 16, workload.SpecOptions{UseAux: true})
	if st.Groups != 0 || st.Matches != 0 {
		t.Fatalf("rejected workload must not speculate: %+v", st)
	}
	if res.(Result).Cost <= 0 {
		t.Fatal("fallback run missing")
	}
}

func TestDistanceRelative(t *testing.T) {
	a := Result{Cost: 110}
	b := Result{Cost: 100}
	if d := a.Distance(b); d != 0.1 {
		t.Fatalf("distance: %v", d)
	}
	if d := a.Distance(Result{}); d != 110 {
		t.Fatalf("zero-ref distance: %v", d)
	}
}
