// Package canneal reproduces the PARSEC canneal benchmark: simulated-
// annealing routing-cost minimization of a chip netlist. It is the one
// nondeterministic benchmark STATS cannot target (§4.2): "STATS needs to
// know the number of inputs that the code pattern of Figure 4 has to
// process at run time just before the first invocation of this code
// pattern. This information is unfortunately unavailable in the canneal
// benchmark: the number of inputs depends on the evolution of the
// computation state" — the annealing loop ends when the cost converges.
//
// The workload is included for Fig. 2 (output variability) and to exercise
// the static-rejection path: Desc().SupportsSTATS is false, and RunSTATS
// falls back to the conventional execution with empty speculation
// statistics.
package canneal

import (
	"math"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
)

// gridSide is the placement grid's edge length; elements live at grid
// cells.
const gridSide = 16

// netsPerElement is the average connectivity of the synthetic netlist.
const netsPerElement = 3

// netlist is the fixed input: element pairs that want to be close.
type netlist struct {
	n     int
	wires [][2]int
}

// Netlist returns the synthetic netlist's wire list (element index pairs
// that want to be close), fixed per size.
func Netlist(size int) [][2]int {
	return genNetlist(size).wires
}

// genNetlist materializes the input, fixed per size.
func genNetlist(size int) netlist {
	n := 4 * size
	if n > gridSide*gridSide {
		n = gridSide * gridSide
	}
	r := rng.New(0xCA22EA1)
	nl := netlist{n: n}
	for i := 0; i < n; i++ {
		for k := 0; k < netsPerElement; k++ {
			j := r.Intn(n)
			if j != i {
				nl.wires = append(nl.wires, [2]int{i, j})
			}
		}
	}
	return nl
}

// placement maps element -> grid cell.
type placement []int

func (p placement) cost(nl netlist) float64 {
	total := 0.0
	for _, w := range nl.wires {
		ax, ay := p[w[0]]%gridSide, p[w[0]]/gridSide
		bx, by := p[w[1]]%gridSide, p[w[1]]/gridSide
		total += math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))
	}
	return total
}

// Result is the final routing cost; its Distance is the relative cost
// difference.
type Result struct {
	Cost float64
	// Steps is the number of temperature steps the run took — the value
	// STATS would have needed in advance and cannot know.
	Steps int
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	o := ref.(Result)
	if o.Cost == 0 {
		return math.Abs(r.Cost - o.Cost)
	}
	return math.Abs(r.Cost-o.Cost) / o.Cost
}

// W is the canneal workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload. No tradeoffs are listed: the paper
// could not find a targetable state dependence, so canneal never reaches
// the tradeoff-encoding stage.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:          "canneal",
		OriginalLOC:   2800,
		NumDeps:       0,
		SupportsSTATS: false,
		RejectReason: "the number of inputs of the Figure 4 pattern depends on the evolution " +
			"of the computation state (the annealing loop ends at convergence), so it is not " +
			"known before the first invocation",
		VariabilitySource: "prvg",
	}
}

// anneal runs the simulated annealing. sweepsScale multiplies the per-
// temperature sweep count (the quality-boost knob); jitter=0 with a fixed
// seed yields the oracle.
func anneal(seed uint64, size int, sweepsScale float64) Result {
	nl := genNetlist(size)
	r := rng.New(seed)
	// Initial placement: a fixed permutation of the grid cells.
	cells := rng.New(0xCA22EA2).Perm(gridSide * gridSide)
	p := make(placement, nl.n)
	copy(p, cells[:nl.n])
	occupied := make(map[int]int, nl.n) // cell -> element
	for e, c := range p {
		occupied[c] = e
	}

	temp := 8.0
	cost := p.cost(nl)
	steps := 0
	sweeps := int(float64(nl.n) * 4 * sweepsScale)
	if sweeps < 1 {
		sweeps = 1
	}
	for temp > 0.05 {
		steps++
		improved := 0.0
		for s := 0; s < sweeps; s++ {
			a := r.Intn(nl.n)
			cell := r.Intn(gridSide * gridSide)
			before := cost
			// Swap element a with whatever holds the cell (or move).
			oldCell := p[a]
			if b, ok := occupied[cell]; ok && b != a {
				p[a], p[b] = cell, oldCell
				occupied[cell], occupied[oldCell] = a, b
				after := p.cost(nl)
				if accept(r, after-before, temp) {
					cost = after
					improved += before - after
				} else {
					p[a], p[b] = oldCell, cell
					occupied[cell], occupied[oldCell] = b, a
				}
			} else if !ok {
				p[a] = cell
				delete(occupied, oldCell)
				occupied[cell] = a
				after := p.cost(nl)
				if accept(r, after-before, temp) {
					cost = after
					improved += before - after
				} else {
					p[a] = oldCell
					delete(occupied, cell)
					occupied[oldCell] = a
				}
			}
		}
		temp *= 0.8
		// Convergence-dependent early exit: this is why the input count
		// is unknowable up front.
		if improved < 0.02*cost && temp < 3 {
			break
		}
	}
	return Result{Cost: cost, Steps: steps}
}

func accept(r *rng.Source, delta, temp float64) bool {
	if delta <= 0 {
		return true
	}
	return r.Float64() < math.Exp(-delta/temp)
}

// RunOriginal implements workload.Workload.
func (*W) RunOriginal(seed uint64, size int) workload.Result {
	return anneal(seed, size, 1)
}

// RunOracle implements workload.Workload: many more sweeps, fixed seed.
func (*W) RunOracle(size int) workload.Result {
	return anneal(0x0AC1E, size, 8)
}

// RunBoosted implements workload.Workload.
func (*W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	if factor < 1 {
		factor = 1
	}
	return anneal(seed, size, factor)
}

// RunSTATS implements workload.Workload. STATS statically rejects canneal,
// so the run falls back to the conventional execution and reports empty
// speculation statistics.
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	return w.RunOriginal(seed, size), core.Stats{}
}

// CostModel implements workload.Workload. Not used by the thread-sweep
// experiments (canneal is excluded from them, as in the paper), but
// provided for completeness: a conventionally parallelized annealer.
func (*W) CostModel(size int, o workload.SpecOptions) workload.Model {
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  1,
		AuxWork:         0,
		InnerWidth:      8,
		InnerSerialFrac: 0.2,
		SyncWork:        0.05,
		ValidateWork:    0,
		MatchProb:       0,
		RedoGain:        0,
	}
}
