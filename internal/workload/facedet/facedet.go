// Package facedet reproduces the paper's OpenCV-based face-detection
// benchmark (§4.2): detecting and tracking a face across a video stream
// with a randomized particle filter. The position of the faces found in
// frame i feeds the analysis of frame i+1 — the state dependence — and the
// particle filter's randomization makes the program nondeterministic.
//
// The synthetic video substitutes for the 40-second camera capture: a face
// (a box with a center and a scale) moves smoothly across the frame; each
// frame carries a noisy raw detection of it. Tradeoffs (§4.2): the number
// of particles and the number of times Gaussian noise is added to the
// particles, plus the detector's scoring precision and its scale-search
// granularity. The state comparison uses the average Euclidean distance of
// the four corner points of the face box, with the same triangulating
// acceptance as bodytrack.
package facedet

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
)

// Frame is one video frame reduced to its raw face detection.
type Frame struct {
	DetCenter mathx.Vec2
	DetScale  float64
}

// particle is one face-box hypothesis.
type particle struct {
	center mathx.Vec2
	scale  float64
}

// State is the tracked face: the particle set.
type State struct {
	particles []particle
}

func cloneState(s State) State {
	c := State{particles: make([]particle, len(s.particles))}
	copy(c.particles, s.particles)
	return c
}

// box converts a (center, scale) face into its four-corner box.
func box(center mathx.Vec2, scale float64) quality.FaceBox {
	h := scale / 2
	return quality.FaceBox{Corners: [4]mathx.Vec2{
		{X: center.X - h, Y: center.Y - h},
		{X: center.X + h, Y: center.Y - h},
		{X: center.X - h, Y: center.Y + h},
		{X: center.X + h, Y: center.Y + h},
	}}
}

// meanFace returns the mean particle hypothesis.
func (s State) meanFace() (mathx.Vec2, float64) {
	if len(s.particles) == 0 {
		return mathx.Vec2{}, 1
	}
	var c mathx.Vec2
	sc := 0.0
	for _, p := range s.particles {
		c = c.Add(p.center)
		sc += p.scale
	}
	n := float64(len(s.particles))
	return c.Scale(1 / n), sc / n
}

// faceDistance is the state-comparison distance: the average Euclidean
// distance of the four corner points between the states' mean faces.
func faceDistance(a, b State) float64 {
	ca, sa := a.meanFace()
	cb, sb := b.meanFace()
	return quality.AvgFaceBoxDistance(
		[]quality.FaceBox{box(ca, sa)},
		[]quality.FaceBox{box(cb, sb)},
	)
}

// Result is the per-frame detected boxes; its Distance is the average
// Euclidean distance between the detected faces (§4.2).
type Result struct {
	Boxes []quality.FaceBox
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	return quality.AvgFaceBoxDistance(r.Boxes, ref.(Result).Boxes)
}

// params resolve the four algorithmic tradeoffs.
type params struct {
	particles   int
	noiseRounds int
	scorePrec   tradeoff.Precision
	scaleSteps  int
}

// W is the facedet workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload with Table 1's facedet row.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "facedet",
		OriginalLOC: 606472,
		NumDeps:     1,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("Particles", tradeoff.Constant, tradeoff.Enum{
				Values: []any{int64(16), int64(32), int64(64), int64(128), int64(256)}, Default: 3,
			}),
			tradeoff.New("NoiseRounds", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 5, Default: 1}),
			tradeoff.New("ScorePrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("ScaleSteps", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 4, Default: 2}),
		},
		TradeoffLOC:       [][2]int{{70, 150}, {5, 10}, {5, 10}, {3, 10}, {0, 10}, {0, 10}},
		ComparisonLOC:     29,
		SupportsSTATS:     true,
		VariabilitySource: "prvg",
	}
}

func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	return params{
		particles:   int(ts[0].Opts.Value(idx(0)).(int64)),
		noiseRounds: int(ts[1].Opts.Value(idx(1)).(int64)),
		scorePrec:   ts[2].Opts.Value(idx(2)).(tradeoff.Precision),
		scaleSteps:  int(ts[3].Opts.Value(idx(3)).(int64)),
	}
}

// trueFace returns the ground-truth face at frame t. The badTraining
// variant (§4.6: "the detected face in facedet does not move") pins it.
func trueFace(t int, badTraining bool) (mathx.Vec2, float64) {
	if badTraining {
		return mathx.Vec2{X: 50, Y: 50}, 12
	}
	ft := float64(t)
	return mathx.Vec2{
		X: 50 + 30*math.Sin(0.10*ft),
		Y: 50 + 20*math.Sin(0.07*ft),
	}, 12 + 3*math.Sin(0.05*ft)
}

// GenFrames materializes the video. The input seed is fixed so every run
// sees the same frames.
func GenFrames(size int, badTraining bool) []Frame {
	seed := uint64(0xFACE)
	if badTraining {
		seed ^= 0xBAD
	}
	r := rng.New(seed)
	frames := make([]Frame, size)
	for t := range frames {
		c, s := trueFace(t, badTraining)
		frames[t] = Frame{
			DetCenter: c.Add(mathx.Vec2{X: r.Norm() * 0.8, Y: r.Norm() * 0.8}),
			DetScale:  s + r.Norm()*0.4,
		}
	}
	return frames
}

func initialState(p params, r *rng.Source) State {
	s := State{particles: make([]particle, p.particles)}
	for i := range s.particles {
		s.particles[i] = particle{
			center: mathx.Vec2{X: 50 + r.Norm()*15, Y: 50 + r.Norm()*15},
			scale:  12 + r.Norm()*3,
		}
	}
	return s
}

// score returns the (quantized) detector response of a hypothesis against
// the frame's raw detection, searched over scaleSteps scale refinements.
func score(p params, hyp particle, f Frame) float64 {
	best := math.Inf(1)
	for step := 0; step < p.scaleSteps; step++ {
		scale := hyp.scale * (1 + 0.02*float64(step-p.scaleSteps/2))
		d := hyp.center.Dist(f.DetCenter)
		d += math.Abs(scale - f.DetScale)
		if d < best {
			best = d
		}
	}
	return p.scorePrec.Quantize(best)
}

// step is one particle-filter update: noiseRounds perturbation/weight/
// resample rounds against the frame.
func step(r *rng.Source, p params, st State, f Frame) State {
	st = cloneState(st)
	if len(st.particles) != p.particles {
		st = resize(st, p.particles, r)
	}
	n := len(st.particles)
	weights := make([]float64, n)
	for round := 0; round < p.noiseRounds; round++ {
		sigma := 1.2 * math.Pow(0.7, float64(round))
		total := 0.0
		for i := range st.particles {
			st.particles[i].center = st.particles[i].center.Add(mathx.Vec2{
				X: r.Norm() * sigma, Y: r.Norm() * sigma,
			})
			st.particles[i].scale += r.Norm() * sigma * 0.3
			if st.particles[i].scale < 1 {
				st.particles[i].scale = 1
			}
			w := math.Exp(-score(p, st.particles[i], f))
			weights[i] = w
			total += w
		}
		if total <= 0 {
			for i := range weights {
				weights[i] = 1
			}
			total = float64(n)
		}
		st = resampleByWeight(st, weights, total, r)
	}
	return st
}

func resampleByWeight(st State, weights []float64, total float64, r *rng.Source) State {
	n := len(st.particles)
	out := State{particles: make([]particle, n)}
	stepSize := total / float64(n)
	u := r.Float64() * stepSize
	cum := 0.0
	src := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*stepSize
		for cum+weights[src] < target && src < n-1 {
			cum += weights[src]
			src++
		}
		out.particles[i] = st.particles[src]
	}
	return out
}

func resize(st State, n int, r *rng.Source) State {
	out := State{particles: make([]particle, n)}
	for i := 0; i < n; i++ {
		out.particles[i] = st.particles[r.Intn(len(st.particles))]
	}
	return out
}

// computeOutput updates the face position with the frame (the state-
// dependence target) and emits the detected box.
func computeOutput(p params) core.Compute[Frame, State, quality.FaceBox] {
	return func(r *rng.Source, f Frame, s State) (quality.FaceBox, State) {
		s = step(r, p, s, f)
		c, sc := s.meanFace()
		return box(c, sc), s
	}
}

// auxCode re-detects the face from the recent frames at the auxiliary
// tradeoffs, seeding particles on the oldest recent detection.
func auxCode(aux params) core.Aux[Frame, State] {
	return func(r *rng.Source, init State, recent []Frame) State {
		if len(recent) == 0 {
			return resize(init, aux.particles, r)
		}
		s := State{particles: make([]particle, aux.particles)}
		for i := range s.particles {
			s.particles[i] = particle{
				center: recent[0].DetCenter.Add(mathx.Vec2{X: r.Norm(), Y: r.Norm()}),
				scale:  recent[0].DetScale + r.Norm()*0.5,
			}
		}
		for _, f := range recent[1:] {
			s = step(r, aux, s, f)
		}
		return s
	}
}

func stateOps() core.StateOps[State] {
	return core.StateOps[State]{
		Clone: cloneState,
		MatchAny: func(spec State, originals []State) bool {
			// Triangulating acceptance with a sub-pixel tolerance: the
			// SDI leaves the strictness to the developer ("how strict
			// the matching between speculative and original states
			// needs to be", §3.3); half a pixel on a ~12-pixel face is
			// well inside the detector's own noise.
			const tol = 0.5
			for i := range originals {
				di := faceDistance(spec, originals[i])
				for j := range originals {
					if i == j {
						continue
					}
					if di <= faceDistance(originals[j], originals[i])+tol {
						return true
					}
				}
			}
			return false
		},
		// Acceptance is a sub-pixel tolerance ball over the mean-face
		// corner distance, and spec and original particle counts may
		// differ (auxiliary re-detection uses its own particle tradeoff),
		// so the only acceptance-invariant feature is the fixed 4-corner
		// box structure: the prefilter always falls through to the deep
		// comparison, keeping the hash-first wiring live at the cost of
		// one probe.
		Fingerprint: func(State) uint64 {
			const boxCorners = 4
			return mathx.NewHash64().Int(boxCorners).Sum()
		},
	}
}

// RunOriginal implements workload.Workload.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), false)
}

func (w *W) run(seed uint64, size int, p params, badTraining bool) Result {
	frames := GenFrames(size, badTraining)
	r := rng.New(seed)
	s := initialState(p, r.Split())
	compute := computeOutput(p)
	res := Result{Boxes: make([]quality.FaceBox, 0, size)}
	for _, f := range frames {
		var b quality.FaceBox
		b, s = compute(r.Split(), f, s)
		res.Boxes = append(res.Boxes, b)
	}
	return res
}

// RunOracle implements workload.Workload.
func (w *W) RunOracle(size int) workload.Result {
	return w.run(0x0AC1E, size, params{particles: 512, noiseRounds: 5, scorePrec: tradeoff.Double, scaleSteps: 4}, false)
}

// RunBoosted implements workload.Workload (Fig. 16).
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	if factor < 1 {
		factor = 1
	}
	p := w.resolve(workload.SpecOptions{}, true)
	p.particles = int(math.Min(512, float64(p.particles)*factor))
	p.noiseRounds = int(math.Min(5, float64(p.noiseRounds)*math.Sqrt(factor)))
	return w.run(seed, size, p, false)
}

// RunSTATS implements workload.Workload.
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	frames := GenFrames(size, o.BadTraining)
	dep := core.New(computeOutput(def), auxCode(aux), stateOps())
	init := initialState(def, rng.New(seed^0xFD))
	outs, _, st := dep.Run(frames, init, o.CoreOptions(seed))
	return Result{Boxes: outs}, st
}

// CostModel implements workload.Workload. The original program's
// parallelism is spent on vectorization, not threads (§4.3: "the original
// parallelism available in facedet is used to aggressively vectorize the
// code"), so its thread-level width is 1 and STATS contributes nearly all
// of the TLP.
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		return float64(p.particles) / 128 * float64(p.noiseRounds) / 2 *
			(0.7 + 0.3*float64(p.scaleSteps)/3) * p.scorePrec.CostFactor()
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	particleTerm := 0.70 + 0.30*math.Sqrt(math.Min(1, float64(aux.particles)/128))
	roundTerm := 0.80 + 0.20*math.Sqrt(math.Min(1, float64(aux.noiseRounds)/2))
	precTerm := [3]float64{0.88, 0.97, 1.0}[aux.scorePrec]
	auxQuality := particleTerm * roundTerm * precTerm
	rb := o.Rollback
	if rb < 1 {
		rb = 1
	}
	rollbackTerm := 1 - math.Exp(-0.9*float64(rb))
	windowTerm := 1 - math.Exp(-2.2*float64(win))
	if o.BadTraining {
		// §4.6 training inputs: the face does not move, so any
		// non-empty window looks sufficient during profiling.
		if win >= 1 {
			windowTerm = 0.99
		} else {
			windowTerm = 0.2
		}
	}
	match := windowTerm * rollbackTerm * math.Min(1, auxQuality)
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  unit(def),
		AuxWork:         float64(win) * unit(aux),
		InnerWidth:      4,
		InnerSerialFrac: 0.25,
		SyncWork:        0.05,
		ValidateWork:    0.01,
		// Triangulating acceptance (like bodytrack's): the first
		// validation always re-executes, then each re-execution accepts
		// with the auxiliary state's quality.
		MatchProb: 0,
		RedoGain:  math.Min(0.97, match),
	}
}
