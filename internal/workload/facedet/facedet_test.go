package facedet

import (
	"testing"

	"repro/internal/workload"
)

func TestInputsFixed(t *testing.T) {
	a, b := GenFrames(10, false), GenFrames(10, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestBadTrainingFaceStatic(t *testing.T) {
	good := GenFrames(30, false)
	bad := GenFrames(30, true)
	if good[0].DetCenter.Dist(good[29].DetCenter) < 5 {
		t.Fatal("normal face should move")
	}
	if bad[0].DetCenter.Dist(bad[29].DetCenter) > 5 {
		t.Fatal("bad-training face should be static")
	}
}

func TestTrackingFollowsFace(t *testing.T) {
	w := New()
	res := w.RunOriginal(1, 30).(Result)
	frames := GenFrames(30, false)
	for i := 5; i < 30; i++ {
		// Box center = mean of corners.
		var cx, cy float64
		for _, c := range res.Boxes[i].Corners {
			cx += c.X / 4
			cy += c.Y / 4
		}
		dx := cx - frames[i].DetCenter.X
		dy := cy - frames[i].DetCenter.Y
		if dx*dx+dy*dy > 9 {
			t.Fatalf("frame %d: tracker %v,%v far from detection %v", i, cx, cy, frames[i].DetCenter)
		}
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	if w.RunOriginal(1, 15).Distance(w.RunOriginal(2, 15)) == 0 {
		t.Fatal("identical outputs across seeds")
	}
}

func TestBoostedImprovesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(20)
	var base, boosted float64
	for seed := uint64(0); seed < 5; seed++ {
		base += w.RunOriginal(seed, 20).Distance(oracle)
		boosted += w.RunBoosted(seed, 20, 4).Distance(oracle)
	}
	if boosted >= base {
		t.Fatalf("boost did not help: %v vs %v", boosted, base)
	}
}

func TestSTATSSpeculationSucceeds(t *testing.T) {
	w := New()
	matches, aborts := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		_, st := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 3, Rollback: 3, Workers: 4,
		})
		matches += st.Matches
		aborts += st.Aborts
	}
	if matches == 0 {
		t.Fatal("aux never matched")
	}
	if aborts > matches {
		t.Fatalf("aborts %d dominate matches %d", aborts, matches)
	}
}

func TestSTATSPreservesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(24)
	var maxOrig float64
	for seed := uint64(0); seed < 5; seed++ {
		if d := w.RunOriginal(seed, 24).Distance(oracle); d > maxOrig {
			maxOrig = d
		}
	}
	for seed := uint64(0); seed < 4; seed++ {
		res, st := w.RunSTATS(seed, 24, workload.SpecOptions{
			UseAux: true, GroupSize: 6, Window: 4, RedoMax: 2, Rollback: 2, Workers: 4,
		})
		if d := res.Distance(oracle); d > 3*maxOrig {
			t.Fatalf("seed %d: distance %v exceeds band %v (stats %+v)", seed, d, maxOrig, st)
		}
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Desc()
	if d.Name != "facedet" || d.OriginalLOC != 606472 {
		t.Fatal("basics")
	}
	if len(d.TradeoffLOC) != 6 || len(d.Tradeoffs) != 4 {
		t.Fatalf("tradeoff counts: %d, %d", len(d.TradeoffLOC), len(d.Tradeoffs))
	}
	if d.ComparisonLOC != 29 {
		t.Fatal("comparison LOC")
	}
}

func TestCostModelVectorizedOriginal(t *testing.T) {
	m := New().CostModel(40, workload.SpecOptions{Window: 2})
	if m.InnerWidth > 4 {
		t.Fatalf("facedet's original TLP is mostly vectorization; thread width %d too wide", m.InnerWidth)
	}
	if m.InvocationWork != 1 {
		t.Fatalf("default work: %v", m.InvocationWork)
	}
	if m.RedoGain <= 0.5 {
		t.Fatalf("redo acceptance too low at window 2: %v", m.RedoGain)
	}
}
