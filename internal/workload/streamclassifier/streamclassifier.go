// Package streamclassifier reproduces the classification variant of
// streamcluster the paper evaluates separately (§4.2, inputs from the loop-
// perforation study [72]): points stream past an online classifier whose
// model — per-class prototype centers — is updated after every prediction.
// The model update serializes the stream: the state dependence is on
// updating the status of the current solution.
//
// Tradeoffs mirror streamcluster's: the data types of three variables used
// in scoring, plus the maximum and minimum prototypes per class. As with
// streamcluster, no comparison function is needed: a model trained by the
// auxiliary code on a window of recent (labeled) points is a state the
// nondeterministic original producer could have reached.
package streamclassifier

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
	"repro/internal/workload/streamdata"
)

// pointsPerInput is the number of stream points per invocation.
const pointsPerInput = 16

// Batch is one input: a labeled slice of the stream. Offset records where
// in the stream the batch starts, so results can be assembled in order.
type Batch struct {
	Offset int
	Points []streamdata.Point
}

// prototype is one class exemplar.
type prototype struct {
	pos    [streamdata.Dim]float64
	weight float64
}

// Model is the state: per-class prototype lists.
type Model struct {
	Classes [streamdata.NumComponents][]prototype
}

func cloneModel(m Model) Model {
	var c Model
	for k := range m.Classes {
		c.Classes[k] = append([]prototype(nil), m.Classes[k]...)
	}
	return c
}

// params resolve the five algorithmic tradeoffs.
type params struct {
	prec          [3]tradeoff.Precision
	maxPrototypes int
	minPrototypes int
}

// Output is the predictions for one batch.
type Output struct {
	Offset int
	Pred   []int
}

// Result is the stream's predicted labels; its Distance is the difference
// in B³ metrics against the gold labels (§4.2).
type Result struct {
	Pred []int
	Gold []int
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	o := ref.(Result)
	return math.Abs(quality.BCubed(r.Pred, r.Gold) - quality.BCubed(o.Pred, o.Gold))
}

// W is the streamclassifier workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload with Table 1's streamclassifier row.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "streamclassifier",
		OriginalLOC: 1770,
		NumDeps:     2,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("ScorePrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("UpdatePrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("WeightPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("MaxPrototypes", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 4, Default: 1}),
			tradeoff.New("MinPrototypes", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 2, Default: 0}),
		},
		TradeoffLOC:       [][2]int{{70, 180}, {10, 20}, {60, 130}, {0, 15}, {0, 15}, {0, 15}, {0, 15}},
		ComparisonLOC:     0,
		SupportsSTATS:     true,
		VariabilitySource: "race",
	}
}

func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	var p params
	for i := 0; i < 3; i++ {
		p.prec[i] = ts[i].Opts.Value(idx(i)).(tradeoff.Precision)
	}
	p.maxPrototypes = int(ts[3].Opts.Value(idx(3)).(int64))
	p.minPrototypes = int(ts[4].Opts.Value(idx(4)).(int64))
	if p.minPrototypes > p.maxPrototypes {
		p.minPrototypes = p.maxPrototypes
	}
	return p
}

// classify returns the predicted class: the class of the nearest prototype.
// Unseen classes (no prototypes yet) are skipped; with an empty model the
// prediction defaults to class 0.
func classify(m *Model, p params, pt streamdata.Point) int {
	best := math.Inf(1)
	pred := 0
	for k := range m.Classes {
		for i := range m.Classes[k] {
			d := p.prec[0].Quantize(streamdata.SqDist(m.Classes[k][i].pos, pt.X))
			if d < best {
				best = d
				pred = k
			}
		}
	}
	return pred
}

// learn folds a labeled point into its class's prototypes: nearest
// prototype drifts toward the point (with randomized step — the
// nondeterminism), or a new prototype opens while under budget.
func learn(r *rng.Source, m *Model, p params, pt streamdata.Point) {
	protos := m.Classes[pt.Label]
	if len(protos) < p.minPrototypes || len(protos) == 0 ||
		(len(protos) < p.maxPrototypes && r.Float64() < 0.05) {
		m.Classes[pt.Label] = append(protos, prototype{pos: pt.X, weight: 1})
		return
	}
	best := math.Inf(1)
	bi := 0
	for i := range protos {
		if d := streamdata.SqDist(protos[i].pos, pt.X); d < best {
			best, bi = d, i
		}
	}
	pr := &protos[bi]
	w := p.prec[2].Quantize(pr.weight)
	// The learning step is randomized: stochastic approximation with a
	// jittered rate, the source of output variability.
	lr := (1 + 0.5*r.Norm()) / (w + 1)
	if lr < 0.01 {
		lr = 0.01
	}
	for d := 0; d < streamdata.Dim; d++ {
		step := p.prec[1].Quantize(lr * (pt.X[d] - pr.pos[d]))
		pr.pos[d] += step
	}
	pr.weight = w + 1
}

// computeOutput predicts each batch point then learns from it
// (prequential evaluation), returning the predictions.
func computeOutput(p params) core.Compute[Batch, Model, Output] {
	return func(r *rng.Source, b Batch, m Model) (Output, Model) {
		m = cloneModel(m)
		out := Output{Offset: b.Offset, Pred: make([]int, len(b.Points))}
		for i, pt := range b.Points {
			out.Pred[i] = classify(&m, p, pt)
			learn(r, &m, p, pt)
		}
		return out, m
	}
}

// auxCode trains a speculative model from the window's labeled points.
func auxCode(p params) core.Aux[Batch, Model] {
	return func(r *rng.Source, init Model, recent []Batch) Model {
		m := cloneModel(init)
		for _, b := range recent {
			for _, pt := range b.Points {
				learn(r, &m, p, pt)
			}
		}
		return m
	}
}

// stateOps: deep clone, by-construction acceptance (nil MatchAny).
// Without a MatchAny the engine never consults the fingerprint; it
// documents the model's structural identity (per-class prototype
// counts) and keeps the hash-first wiring uniform across the suite.
func stateOps() core.StateOps[Model] {
	return core.StateOps[Model]{
		Clone: cloneModel,
		Fingerprint: func(m Model) uint64 {
			h := mathx.NewHash64()
			for k := range m.Classes {
				h = h.Int(len(m.Classes[k]))
			}
			return h.Sum()
		},
	}
}

func batches(size int, badTraining bool) []Batch {
	pts := streamdata.Stream(size*pointsPerInput, badTraining)
	bs := make([]Batch, size)
	for i := range bs {
		bs[i] = Batch{Offset: i * pointsPerInput, Points: pts[i*pointsPerInput : (i+1)*pointsPerInput]}
	}
	return bs
}

// numMembers is the slot count of the reservations formulation: batches
// are dealt round-robin over an ensemble of independent models, one state
// slot each, so same-round batches on distinct members have disjoint
// footprints and commit together.
const numMembers = 4

// EnsembleBatch is one cell of the ensemble chain: batch index i routed
// to member i % numMembers.
type EnsembleBatch struct {
	Offset int
	Member int
	Points []streamdata.Point
}

// EnsembleBatches deals the stream's batches round-robin over the
// ensemble members.
func EnsembleBatches(size int, badTraining bool) []EnsembleBatch {
	bs := batches(size, badTraining)
	cells := make([]EnsembleBatch, len(bs))
	for i, b := range bs {
		cells[i] = EnsembleBatch{Offset: b.Offset, Member: i % numMembers, Points: b.Points}
	}
	return cells
}

// modelsEqual compares two member models structurally (the Touched
// oracle hook needs a value diff).
func modelsEqual(a, b Model) bool {
	for k := range a.Classes {
		if len(a.Classes[k]) != len(b.Classes[k]) {
			return false
		}
		for i := range a.Classes[k] {
			if a.Classes[k][i] != b.Classes[k][i] {
				return false
			}
		}
	}
	return true
}

// EnsembleDependence builds the reservation-ready dependence: state is
// one model per ensemble member, a cell's footprint is exactly its
// member's slot, and Merge copies the winner's slot.
func EnsembleDependence(o workload.SpecOptions) *core.Dependence[EnsembleBatch, []Model, Output] {
	return ensembleDependence((&W{}).resolve(o, true))
}

func ensembleDependence(p params) *core.Dependence[EnsembleBatch, []Model, Output] {
	compute := func(r *rng.Source, in EnsembleBatch, st []Model) (Output, []Model) {
		m := st[in.Member]
		out := Output{Offset: in.Offset, Pred: make([]int, len(in.Points))}
		for i, pt := range in.Points {
			out.Pred[i] = classify(&m, p, pt)
			learn(r, &m, p, pt)
		}
		st[in.Member] = m
		return out, st
	}
	ops := core.StateOps[[]Model]{
		Clone: func(s []Model) []Model {
			cp := make([]Model, len(s))
			for i := range s {
				cp[i] = cloneModel(s[i])
			}
			return cp
		},
	}
	dep := core.New[EnsembleBatch, []Model, Output](compute, nil, ops)
	return dep.WithReserve(core.ReserveOps[EnsembleBatch, []Model]{
		NumSlots:  func(initial []Model) int { return len(initial) },
		Footprint: func(in EnsembleBatch, _ []Model) []int { return []int{in.Member} },
		Merge: func(dst, src []Model, slots []int) []Model {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
		Touched: func(before, after []Model) []int {
			var touched []int
			for i := range before {
				if i < len(after) && !modelsEqual(before[i], after[i]) {
					touched = append(touched, i)
				}
			}
			return touched
		},
	})
}

// runEnsemble classifies the stream through one reservations engine run
// over the ensemble chain; outputs carry their stream offsets, so the
// existing assembly works unchanged.
func runEnsemble(seed uint64, size int, p params, o workload.SpecOptions) (workload.Result, core.Stats) {
	dep := ensembleDependence(p)
	outs, _, st := dep.Run(EnsembleBatches(size, o.BadTraining), make([]Model, numMembers), o.CoreOptions(seed))
	return assemble(size, outs, o.BadTraining), st
}

func assemble(size int, outs []Output, badTraining bool) Result {
	pts := streamdata.Stream(size*pointsPerInput, badTraining)
	res := Result{Pred: make([]int, len(pts)), Gold: make([]int, len(pts))}
	for i, pt := range pts {
		res.Gold[i] = pt.Label
	}
	for _, o := range outs {
		copy(res.Pred[o.Offset:], o.Pred)
	}
	return res
}

// RunOriginal implements workload.Workload.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), 0, false)
}

func (w *W) run(seed uint64, size int, p params, warmPasses int, badTraining bool) Result {
	bs := batches(size, badTraining)
	r := rng.New(seed)
	var m Model
	// Quality-boost mode: extra passes over the data warm the model
	// before the scored prequential pass.
	for pass := 0; pass < warmPasses; pass++ {
		for _, b := range bs {
			for _, pt := range b.Points {
				learn(r.Split(), &m, p, pt)
			}
		}
	}
	compute := computeOutput(p)
	outs := make([]Output, 0, len(bs))
	for _, b := range bs {
		var o Output
		o, m = compute(r.Split(), b, m)
		outs = append(outs, o)
	}
	return assemble(size, outs, badTraining)
}

// RunOracle implements workload.Workload: generous prototype budget and
// warm passes, fixed seed.
func (w *W) RunOracle(size int) workload.Result {
	p := w.resolve(workload.SpecOptions{}, true)
	p.maxPrototypes = 4
	return w.run(0x0AC1E, size, p, 8, false)
}

// RunBoosted implements workload.Workload (Fig. 16): extra passes.
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	passes := int(factor) - 1
	if passes < 0 {
		passes = 0
	}
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), passes, false)
}

// RunSTATS implements workload.Workload. Under core.ProtocolReservations
// the stream runs the ensemble formulation: numMembers independent
// models, one state slot each (see EnsembleDependence).
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	if o.Protocol == core.ProtocolReservations {
		return runEnsemble(seed, size, def, o)
	}
	aux := w.resolve(o, false)
	bs := batches(size, o.BadTraining)
	dep := core.New(computeOutput(def), auxCode(aux), stateOps())
	outs, _, st := dep.Run(bs, Model{}, o.CoreOptions(seed))
	return assemble(size, outs, o.BadTraining), st
}

// CostModel implements workload.Workload (same shape as streamcluster).
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		precCost := (p.prec[0].CostFactor() + p.prec[1].CostFactor() + p.prec[2].CostFactor()) / 3
		return precCost * (0.5 + 0.5*float64(p.maxPrototypes)/2.0)
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  unit(def),
		AuxWork:         float64(win) * unit(aux),
		InnerWidth:      16,
		InnerSerialFrac: 0.10,
		SyncWork:        0.04,
		ValidateWork:    0.001,
		MatchProb:       1,
		RedoGain:        0,
	}
}
