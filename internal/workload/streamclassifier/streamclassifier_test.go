package streamclassifier

import (
	"testing"

	"repro/internal/quality"
	"repro/internal/workload"
)

func TestClassifierLearns(t *testing.T) {
	// After the stream, predictions should beat chance substantially:
	// B³ F-score well above the ~1/k random baseline.
	w := New()
	res := w.RunOriginal(1, 32).(Result)
	score := quality.BCubed(res.Pred, res.Gold)
	if score < 0.5 {
		t.Fatalf("B3 score too low: %v", score)
	}
}

func TestOracleBeatsOriginal(t *testing.T) {
	w := New()
	oracle := w.RunOracle(32).(Result)
	orig := w.RunOriginal(1, 32).(Result)
	so := quality.BCubed(oracle.Pred, oracle.Gold)
	sg := quality.BCubed(orig.Pred, orig.Gold)
	if so < sg {
		t.Fatalf("oracle %v worse than original %v", so, sg)
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	a := w.RunOriginal(1, 24).(Result)
	b := w.RunOriginal(2, 24).(Result)
	same := true
	for i := range a.Pred {
		if a.Pred[i] != b.Pred[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("identical predictions across seeds")
	}
}

func TestSTATSCommitsByConstruction(t *testing.T) {
	w := New()
	res, st := w.RunSTATS(1, 24, workload.SpecOptions{UseAux: true, GroupSize: 6, Window: 2, Workers: 4})
	if st.Aborts != 0 {
		t.Fatalf("aborts: %d", st.Aborts)
	}
	r := res.(Result)
	if len(r.Pred) != 24*pointsPerInput {
		t.Fatalf("predictions: %d", len(r.Pred))
	}
}

func TestSTATSPreservesQuality(t *testing.T) {
	w := New()
	var orig, stats float64
	for seed := uint64(0); seed < 4; seed++ {
		ro := w.RunOriginal(seed, 32).(Result)
		orig += quality.BCubed(ro.Pred, ro.Gold)
		rs, _ := w.RunSTATS(seed, 32, workload.SpecOptions{UseAux: true, GroupSize: 8, Window: 3, Workers: 4})
		stats += quality.BCubed(rs.(Result).Pred, rs.(Result).Gold)
	}
	// STATS scores must stay within a few points of the original's.
	if stats < orig-0.4 {
		t.Fatalf("STATS B3 sum %v vs original %v", stats, orig)
	}
}

func TestBoostedImprovesQuality(t *testing.T) {
	w := New()
	var base, boosted float64
	for seed := uint64(0); seed < 4; seed++ {
		rb := w.RunOriginal(seed, 24).(Result)
		base += quality.BCubed(rb.Pred, rb.Gold)
		rB := w.RunBoosted(seed, 24, 6).(Result)
		boosted += quality.BCubed(rB.Pred, rB.Gold)
	}
	if boosted <= base {
		t.Fatalf("warm passes did not help: %v vs %v", boosted, base)
	}
}

func TestDistanceZeroForSelf(t *testing.T) {
	w := New()
	r := w.RunOriginal(1, 16)
	if r.Distance(r) != 0 {
		t.Fatal("self distance")
	}
}

func TestCloneModelIndependent(t *testing.T) {
	var m Model
	m.Classes[0] = []prototype{{weight: 1}}
	c := cloneModel(m)
	c.Classes[0][0].weight = 9
	if m.Classes[0][0].weight != 1 {
		t.Fatal("clone aliases prototypes")
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Desc()
	if d.Name != "streamclassifier" || len(d.TradeoffLOC) != 7 || len(d.Tradeoffs) != 5 {
		t.Fatal("descriptor")
	}
}

func TestCostModelDefaultsNormalized(t *testing.T) {
	m := New().CostModel(32, workload.SpecOptions{Window: 2})
	if m.InvocationWork != 1 {
		t.Fatalf("default invocation work: %v", m.InvocationWork)
	}
}
