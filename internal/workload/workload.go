// Package workload defines the interface the seven benchmark reproductions
// implement (§4.2): the six STATS targets — bodytrack, fluidanimate,
// swaptions, streamcluster, streamclassifier, facedet — plus canneal, the
// benchmark the paper includes only to show that STATS statically rejects
// it (its input count is unknown before the first invocation).
//
// Each workload exposes two complementary faces:
//
//   - Real execution: the actual nondeterministic computation, runnable
//     sequentially (the out-of-the-box program), through the STATS core
//     engine (speculative execution with auxiliary code), or in a
//     quality-boosted mode (Fig. 16). These feed the output-variability,
//     quality, and speculation-behaviour experiments.
//
//   - A cost model: the work shape of the computation (per-invocation work,
//     inner parallel width, serial fractions, auxiliary-code cost, expected
//     speculation outcomes), which the task-graph generator turns into
//     platform-simulator graphs for the thread-sweep experiments
//     (Figs. 3, 12-15).
package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tradeoff"
)

// SpecOptions selects a point of the per-workload state space for a real or
// simulated run: the engine parameters of §3.1 plus the auxiliary-code
// tradeoff indices.
type SpecOptions struct {
	// UseAux enables satisfying the state dependence speculatively (with
	// auxiliary code under core.ProtocolAux, with slot reservations under
	// core.ProtocolReservations).
	UseAux bool
	// Protocol selects the engine's speculation protocol; the zero value
	// is the paper's aux-state speculation.
	Protocol core.Protocol
	// GroupSize, Window, RedoMax and Rollback are the engine options of
	// core.Options (G, k, R, W).
	GroupSize int
	Window    int
	RedoMax   int
	Rollback  int
	// Workers is the worker width for the real engine run.
	Workers int
	// TradeoffIdx are the auxiliary-code tradeoff indices, aligned with
	// Desc().Tradeoffs. nil means every tradeoff at its default.
	TradeoffIdx []int64
	// EncodedTradeoffs limits how many leading tradeoffs are encoded at
	// all (Fig. 18): tradeoffs beyond this count behave as defaults even
	// if TradeoffIdx sets them. 0 means all are encoded.
	EncodedTradeoffs int
	// BadTraining selects the §4.6 non-representative input variant.
	BadTraining bool
	// Obs, when non-nil, receives the engine's speculation event log and
	// metrics for real RunSTATS executions (see internal/obs); nil runs
	// unobserved at ~zero cost.
	Obs *obs.Observer
	// GroupTimeout bounds one speculative group's wall-clock execution
	// in real engine runs; zero disables the deadline.
	GroupTimeout time.Duration
	// Breaker, when non-nil, gates speculation across this workload's
	// engine runs with a shared abort-rate circuit breaker.
	Breaker *core.Breaker
	// Sched, when non-nil, routes the engine's nondeterministic decision
	// points through a controlled scheduler (internal/sched) for real
	// RunSTATS executions — systematic exploration and trace replay.
	Sched sched.Controller
	// SchedLane is the base lane for the run's gate participants; see
	// core.Options.SchedLane.
	SchedLane int
	// FootprintCheck enables the runtime footprint oracle under
	// core.ProtocolReservations; see core.Options.FootprintCheck.
	FootprintCheck bool
}

// CoreOptions lowers the engine-relevant fields of o (plus the run seed)
// to core.Options — the single place the SpecOptions→engine mapping
// lives, so every workload's RunSTATS threads new engine options (like
// the observability sink) identically.
func (o SpecOptions) CoreOptions(seed uint64) core.Options {
	return core.Options{
		UseAux:         o.UseAux,
		Protocol:       o.Protocol,
		GroupSize:      o.GroupSize,
		Window:         o.Window,
		RedoMax:        o.RedoMax,
		Rollback:       o.Rollback,
		Workers:        o.Workers,
		Seed:           seed,
		GroupTimeout:   o.GroupTimeout,
		Breaker:        o.Breaker,
		Obs:            o.Obs,
		Sched:          o.Sched,
		SchedLane:      o.SchedLane,
		FootprintCheck: o.FootprintCheck,
	}
}

// Tradeoff returns the effective index of tradeoff t under the options,
// honouring EncodedTradeoffs and defaulting.
func (o SpecOptions) Tradeoff(ts []tradeoff.T, t int) int64 {
	if t < 0 || t >= len(ts) {
		panic(fmt.Sprintf("workload: tradeoff %d out of range", t))
	}
	if o.EncodedTradeoffs > 0 && t >= o.EncodedTradeoffs {
		return ts[t].Opts.DefaultIndex()
	}
	if o.TradeoffIdx == nil || t >= len(o.TradeoffIdx) {
		return ts[t].Opts.DefaultIndex()
	}
	idx := o.TradeoffIdx[t]
	if idx < 0 || idx >= ts[t].Opts.MaxIndex() {
		panic(fmt.Sprintf("workload: tradeoff %s index %d out of range", ts[t].Name, idx))
	}
	return idx
}

// Descriptor is the workload's static description, including the Table 1
// developer-effort numbers from the paper.
type Descriptor struct {
	Name string
	// OriginalLOC is the benchmark's original line count (Table 1).
	OriginalLOC int
	// NumDeps is the number of state dependences identified.
	NumDeps int
	// Tradeoffs lists the encoded tradeoffs in payoff order — the order
	// of Table 1's per-tradeoff columns, which Fig. 18's sweep follows.
	// Thread-count tradeoffs ("which all benchmarks naturally have") are
	// the trailing entries.
	Tradeoffs []tradeoff.T
	// TradeoffLOC is the (modified, added) line counts per tradeoff from
	// Table 1.
	TradeoffLOC [][2]int
	// ComparisonLOC is the state-comparison method's line count.
	ComparisonLOC int
	// ScalarReductionState marks dependences whose state updates are
	// scalar reductions (variable = variable op value) — the only form
	// ALTER-class systems can exploit (§4.4: swaptions' "producer and
	// consumer are single instructions and the state (a register) is
	// implicitly cloned").
	ScalarReductionState bool
	// SafeToBreak marks dependences QuickStep/HELIX-UP-class systems can
	// break without exceeding the original output variability (§4.4:
	// they "improved performance only for swaptions").
	SafeToBreak bool
	// SupportsSTATS reports whether STATS can target the workload;
	// RejectReason explains a false value (canneal: the number of inputs
	// is not known before the first invocation of the pattern).
	SupportsSTATS bool
	RejectReason  string
	// VariabilitySource is the Fig. 2 categorization: "race" for output
	// variability due to race conditions, "prvg" for random generators.
	VariabilitySource string
}

// Result is a workload output that can measure its domain-specific distance
// to a reference output (0 = identical; the §4.2 metrics).
type Result interface {
	Distance(ref Result) float64
}

// Model is a workload's cost shape at a given input size and configuration,
// consumed by the task-graph generator.
type Model struct {
	// NumInputs is the length of the state-dependence input chain.
	NumInputs int
	// InvocationWork is the work of one computeOutput invocation at the
	// selected tradeoffs (default tradeoffs outside auxiliary code).
	InvocationWork float64
	// AuxWork is the work of one auxiliary-code execution at the selected
	// aux tradeoffs and window.
	AuxWork float64
	// InnerWidth and InnerSerialFrac describe the original program's TLP
	// inside one invocation: InnerWidth parallel tasks covering
	// (1-InnerSerialFrac) of the work, the rest serial.
	InnerWidth      int
	InnerSerialFrac float64
	// SyncWork is the per-invocation synchronization overhead the
	// original parallelization pays (bodytrack's "more frequent
	// inter-thread synchronizations").
	SyncWork float64
	// ValidateWork is the cost of one state comparison.
	ValidateWork float64
	// OuterParallel marks workloads whose original TLP is across
	// independent outer units rather than inside an invocation
	// (swaptions: one unit per swaption).
	OuterParallel bool
	// OuterTasks is the number of independent outer units when
	// OuterParallel is set.
	OuterTasks int
	// MatchProb is the probability that a speculative state is accepted
	// at a group boundary on the first try; RedoGain is the additional
	// acceptance probability contributed by each re-execution.
	MatchProb float64
	RedoGain  float64
}

// Workload is one benchmark reproduction.
type Workload interface {
	// Desc returns the static description.
	Desc() Descriptor
	// RunOriginal executes the out-of-the-box nondeterministic program
	// sequentially at the given input size.
	RunOriginal(seed uint64, size int) Result
	// RunOracle executes the quality-maximizing configuration used as
	// the §4.2 oracle. It is deterministic.
	RunOracle(size int) Result
	// RunSTATS executes through the core engine under the given options,
	// returning the output and the engine statistics.
	RunSTATS(seed uint64, size int, o SpecOptions) (Result, core.Stats)
	// RunBoosted spends factor× more quality-directed work (Fig. 16:
	// "spend the saved time to iterate more over the same dataset").
	RunBoosted(seed uint64, size int, factor float64) Result
	// CostModel returns the workload's cost shape under the options.
	CostModel(size int, o SpecOptions) Model
}

// NativeSize is the conventional "native input" size used by the
// evaluation harness; workloads interpret it in their own units (frames,
// points, swaptions × blocks, time steps).
const NativeSize = 64

// SmallSize is used where many repeated real runs are needed (output
// variability, autotuner profiling in tests).
const SmallSize = 16
