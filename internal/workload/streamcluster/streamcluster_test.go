package streamcluster

import (
	"math"
	"testing"

	"repro/internal/quality"
	"repro/internal/workload"
	"repro/internal/workload/streamdata"
)

func TestClusteringFindsStructure(t *testing.T) {
	// The online clustering must recover something close to the true
	// mixture: its Davies-Bouldin index should be near the oracle's.
	w := New()
	oracle := w.RunOracle(32).(Result)
	got := w.RunOriginal(1, 32).(Result)
	oracleDB := quality.DaviesBouldin(oracle.Clustering)
	gotDB := quality.DaviesBouldin(got.Clustering)
	if oracleDB <= 0 {
		t.Fatalf("oracle DB: %v", oracleDB)
	}
	if gotDB > 4*oracleDB {
		t.Fatalf("clustering too poor: DB %v vs oracle %v", gotDB, oracleDB)
	}
}

func TestNondeterministicAcrossSeeds(t *testing.T) {
	w := New()
	a := w.RunOriginal(1, 16)
	b := w.RunOriginal(2, 16)
	if a.Distance(b) == 0 {
		t.Fatal("identical clusterings across seeds")
	}
}

func TestCentersBounded(t *testing.T) {
	w := New()
	p := w.resolve(workload.SpecOptions{}, true)
	res, _ := w.RunSTATS(1, 24, workload.SpecOptions{UseAux: true, GroupSize: 6, Window: 2, Workers: 4})
	maxAssign := 0
	for _, a := range res.(Result).Clustering.Assign {
		if a > maxAssign {
			maxAssign = a
		}
	}
	if maxAssign >= p.maxClusters {
		t.Fatalf("assignment uses %d clusters, budget %d", maxAssign+1, p.maxClusters)
	}
}

func TestSTATSCommitsByConstruction(t *testing.T) {
	w := New()
	_, st := w.RunSTATS(2, 24, workload.SpecOptions{UseAux: true, GroupSize: 6, Window: 2, Workers: 4})
	if st.Aborts != 0 {
		t.Fatalf("aborts: %d", st.Aborts)
	}
	if st.Matches != 3 {
		t.Fatalf("matches: %d", st.Matches)
	}
}

func TestSTATSPreservesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(32)
	var orig, stats float64
	for seed := uint64(0); seed < 4; seed++ {
		orig += w.RunOriginal(seed, 32).Distance(oracle)
		res, _ := w.RunSTATS(seed, 32, workload.SpecOptions{UseAux: true, GroupSize: 8, Window: 3, Workers: 4})
		stats += res.Distance(oracle)
	}
	if stats > 4*orig+0.4 {
		t.Fatalf("STATS quality loss: %v vs original %v", stats, orig)
	}
}

func TestBoostedImprovesQuality(t *testing.T) {
	w := New()
	oracle := w.RunOracle(32)
	var base, boosted float64
	for seed := uint64(0); seed < 4; seed++ {
		base += w.RunOriginal(seed, 32).Distance(oracle)
		boosted += w.RunBoosted(seed, 32, 8).Distance(oracle)
	}
	if boosted >= base {
		t.Fatalf("refinement did not improve quality: %v vs %v", boosted, base)
	}
}

func TestMergeClosest(t *testing.T) {
	sol := Solution{Centers: []center{
		{pos: [streamdata.Dim]float64{0, 0, 0, 0}, weight: 1},
		{pos: [streamdata.Dim]float64{10, 0, 0, 0}, weight: 1},
		{pos: [streamdata.Dim]float64{0.2, 0, 0, 0}, weight: 3},
	}}
	mergeClosest(&sol)
	if len(sol.Centers) != 2 {
		t.Fatalf("centers after merge: %d", len(sol.Centers))
	}
	// The two near centers merged to their weighted mean: (0*1+0.2*3)/4.
	found := false
	for _, c := range sol.Centers {
		if c.weight == 4 && math.Abs(c.pos[0]-0.15) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged center wrong: %+v", sol.Centers)
	}
}

func TestCloneSolutionIndependent(t *testing.T) {
	a := Solution{Centers: []center{{weight: 1}}, FacilityCost: 2}
	b := cloneSolution(a)
	b.Centers[0].weight = 9
	if a.Centers[0].weight != 1 {
		t.Fatal("clone aliases centers")
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Desc()
	if d.Name != "streamcluster" || d.NumDeps != 2 {
		t.Fatal("basics")
	}
	if len(d.TradeoffLOC) != 7 || len(d.Tradeoffs) != 5 {
		t.Fatalf("tradeoff counts: %d, %d", len(d.TradeoffLOC), len(d.Tradeoffs))
	}
	if d.VariabilitySource != "race" {
		t.Fatal("variability source")
	}
}

func TestCostModelDefaultsNormalized(t *testing.T) {
	m := New().CostModel(32, workload.SpecOptions{Window: 2})
	if m.InvocationWork != 1 {
		t.Fatalf("default invocation work: %v", m.InvocationWork)
	}
	if m.MatchProb != 1 {
		t.Fatal("by-construction match prob")
	}
}
