// Package streamcluster reproduces the PARSEC streamcluster benchmark
// (§4.2): online k-median clustering of a point stream. Candidate centroids
// are considered one by one; whether a candidate opens a new center is a
// randomized decision that depends on the current solution, and the
// solution update serializes the stream — the state dependence is "on
// updating the status of the current solution".
//
// Tradeoffs (§4.2): the data types of three variables used to estimate the
// quality of the current solution, plus the maximum and minimum number of
// clusters.
//
// No state-comparison function is needed: a solution built by the auxiliary
// code from a window of recent points is by construction a solution the
// nondeterministic original producer could have reached.
package streamcluster

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/tradeoff"
	"repro/internal/workload"
	"repro/internal/workload/streamdata"
)

// pointsPerInput is the number of stream points one invocation of the
// state-dependence target consumes.
const pointsPerInput = 16

// Batch is one input: a slice of the stream.
type Batch struct {
	Points []streamdata.Point
}

// center is one open facility.
type center struct {
	pos    [streamdata.Dim]float64
	weight float64
}

// Solution is the state: the current set of open centers and the running
// facility cost estimate.
type Solution struct {
	Centers      []center
	FacilityCost float64
}

func cloneSolution(s Solution) Solution {
	c := Solution{Centers: make([]center, len(s.Centers)), FacilityCost: s.FacilityCost}
	copy(c.Centers, s.Centers)
	return c
}

// params resolve the five algorithmic tradeoffs.
type params struct {
	prec        [3]tradeoff.Precision
	maxClusters int
	minClusters int
}

// Result is the final clustering of the whole stream; its Distance is the
// difference of Davies-Bouldin indices (§4.2).
type Result struct {
	Clustering quality.Clustering
}

// Distance implements workload.Result.
func (r Result) Distance(ref workload.Result) float64 {
	return quality.DaviesBouldinDiff(r.Clustering, ref.(Result).Clustering)
}

// W is the streamcluster workload.
type W struct{}

// New returns the workload.
func New() *W { return &W{} }

// Desc implements workload.Workload with Table 1's streamcluster row.
func (*W) Desc() workload.Descriptor {
	return workload.Descriptor{
		Name:        "streamcluster",
		OriginalLOC: 1770,
		NumDeps:     2,
		Tradeoffs: []tradeoff.T{
			tradeoff.New("GainPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("CostPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("WeightPrecision", tradeoff.Type, tradeoff.PrecisionEnum()),
			tradeoff.New("MaxClusters", tradeoff.Constant, tradeoff.IntRange{Lo: 5, Hi: 20, Default: 5}),
			tradeoff.New("MinClusters", tradeoff.Constant, tradeoff.IntRange{Lo: 1, Hi: 5, Default: 2}),
		},
		TradeoffLOC:       [][2]int{{80, 215}, {10, 20}, {60, 174}, {0, 15}, {0, 15}, {0, 15}, {0, 15}},
		ComparisonLOC:     0,
		SupportsSTATS:     true,
		VariabilitySource: "race",
	}
}

func (w *W) resolve(o workload.SpecOptions, defaults bool) params {
	ts := w.Desc().Tradeoffs
	idx := func(t int) int64 {
		if defaults {
			return ts[t].Opts.DefaultIndex()
		}
		return o.Tradeoff(ts, t)
	}
	var p params
	for i := 0; i < 3; i++ {
		p.prec[i] = ts[i].Opts.Value(idx(i)).(tradeoff.Precision)
	}
	p.maxClusters = int(ts[3].Opts.Value(idx(3)).(int64))
	p.minClusters = int(ts[4].Opts.Value(idx(4)).(int64))
	if p.minClusters > p.maxClusters {
		p.minClusters = p.maxClusters
	}
	return p
}

// addPoint performs the randomized facility-location step for one point:
// open a new center with probability proportional to the (precision-
// quantized) connection gain, otherwise assign to the nearest center.
func addPoint(r *rng.Source, p params, sol *Solution, pt streamdata.Point) {
	if len(sol.Centers) == 0 {
		sol.Centers = append(sol.Centers, center{pos: pt.X, weight: 1})
		return
	}
	best := math.Inf(1)
	bestIdx := 0
	for i := range sol.Centers {
		d := p.prec[0].Quantize(streamdata.SqDist(sol.Centers[i].pos, pt.X))
		if d < best {
			best = d
			bestIdx = i
		}
	}
	cost := p.prec[1].Quantize(sol.FacilityCost)
	if cost <= 0 {
		cost = 1
	}
	if r.Float64() < math.Min(1, best/cost) {
		sol.Centers = append(sol.Centers, center{pos: pt.X, weight: 1})
	} else {
		c := &sol.Centers[bestIdx]
		w := p.prec[2].Quantize(c.weight)
		for d := 0; d < streamdata.Dim; d++ {
			c.pos[d] = (c.pos[d]*w + pt.X[d]) / (w + 1)
		}
		c.weight = w + 1
	}
	// Track the running facility cost so openings stay calibrated.
	sol.FacilityCost = 0.97*sol.FacilityCost + 0.03*best*4
	// Consolidate down to the cluster budget.
	for len(sol.Centers) > p.maxClusters {
		mergeClosest(sol)
	}
}

// mergeClosest merges the two nearest centers (weighted mean).
func mergeClosest(sol *Solution) {
	n := len(sol.Centers)
	bi, bj := 0, 1
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := streamdata.SqDist(sol.Centers[i].pos, sol.Centers[j].pos); d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	a, b := sol.Centers[bi], sol.Centers[bj]
	total := a.weight + b.weight
	for d := 0; d < streamdata.Dim; d++ {
		a.pos[d] = (a.pos[d]*a.weight + b.pos[d]*b.weight) / total
	}
	a.weight = total
	sol.Centers[bi] = a
	sol.Centers = append(sol.Centers[:bj], sol.Centers[bj+1:]...)
}

// computeOutput consumes one batch, updating the solution; the output is
// the number of open centers (a progress indicator).
func computeOutput(p params) core.Compute[Batch, Solution, int] {
	return func(r *rng.Source, b Batch, sol Solution) (int, Solution) {
		sol = cloneSolution(sol)
		for _, pt := range b.Points {
			addPoint(r, p, &sol, pt)
		}
		return len(sol.Centers), sol
	}
}

// auxCode builds a speculative solution by clustering only the window's
// recent points at the auxiliary tradeoffs. The stream is stationary, so
// the window's solution is statistically interchangeable with the prefix's.
func auxCode(p params) core.Aux[Batch, Solution] {
	return func(r *rng.Source, init Solution, recent []Batch) Solution {
		sol := cloneSolution(init)
		sol.FacilityCost = 1
		for _, b := range recent {
			for _, pt := range b.Points {
				addPoint(r, p, &sol, pt)
			}
		}
		return sol
	}
}

// stateOps: deep clone, by-construction acceptance (nil MatchAny).
// Without a MatchAny the engine never consults the fingerprint; it
// documents the solution's structural identity (center count and
// facility cost) and keeps the hash-first wiring uniform across the
// suite.
func stateOps() core.StateOps[Solution] {
	return core.StateOps[Solution]{
		Clone: cloneSolution,
		Fingerprint: func(s Solution) uint64 {
			return mathx.NewHash64().Int(len(s.Centers)).Float(s.FacilityCost).Sum()
		},
	}
}

// numShards is the slot count of the reservations formulation: the
// stream is dealt round-robin over this many independent sub-solutions,
// so batches landing on different shards have disjoint footprints and
// commit in the same round.
const numShards = 4

// ShardBatch is one cell of the sharded chain the reservations protocol
// clusters: batch Index routed to shard Index % numShards.
type ShardBatch struct {
	Index  int
	Shard  int
	Points []streamdata.Point
}

// ShardBatches deals the stream's batches round-robin over the shards.
func ShardBatches(size int, badTraining bool) []ShardBatch {
	bs := batches(size, badTraining)
	cells := make([]ShardBatch, len(bs))
	for i, b := range bs {
		cells[i] = ShardBatch{Index: i, Shard: i % numShards, Points: b.Points}
	}
	return cells
}

// solutionsEqual compares two shard solutions structurally (the Touched
// oracle hook needs a value diff, not pointer identity).
func solutionsEqual(a, b Solution) bool {
	if a.FacilityCost != b.FacilityCost || len(a.Centers) != len(b.Centers) {
		return false
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			return false
		}
	}
	return true
}

// ShardedDependence builds the reservation-ready dependence: state is one
// Solution per shard, a cell's footprint is exactly its shard's slot, and
// Merge copies the winner's slot.
func ShardedDependence(o workload.SpecOptions) *core.Dependence[ShardBatch, []Solution, int] {
	return shardedDependence((&W{}).resolve(o, true))
}

func shardedDependence(p params) *core.Dependence[ShardBatch, []Solution, int] {
	compute := func(r *rng.Source, in ShardBatch, st []Solution) (int, []Solution) {
		sol := st[in.Shard]
		for _, pt := range in.Points {
			addPoint(r, p, &sol, pt)
		}
		st[in.Shard] = sol
		return len(sol.Centers), st
	}
	ops := core.StateOps[[]Solution]{
		Clone: func(s []Solution) []Solution {
			cp := make([]Solution, len(s))
			for i := range s {
				cp[i] = cloneSolution(s[i])
			}
			return cp
		},
	}
	dep := core.New[ShardBatch, []Solution, int](compute, nil, ops)
	return dep.WithReserve(core.ReserveOps[ShardBatch, []Solution]{
		NumSlots:  func(initial []Solution) int { return len(initial) },
		Footprint: func(in ShardBatch, _ []Solution) []int { return []int{in.Shard} },
		Merge: func(dst, src []Solution, slots []int) []Solution {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
		Touched: func(before, after []Solution) []int {
			var touched []int
			for i := range before {
				if i < len(after) && !solutionsEqual(before[i], after[i]) {
					touched = append(touched, i)
				}
			}
			return touched
		},
	})
}

// runSharded clusters the stream through one reservations engine run over
// the sharded chain, then deterministically merges the shard solutions
// down to the cluster budget for the final assignment.
func runSharded(seed uint64, size int, p params, o workload.SpecOptions) (workload.Result, core.Stats) {
	init := make([]Solution, numShards)
	for i := range init {
		init[i] = Solution{FacilityCost: 1}
	}
	dep := shardedDependence(p)
	_, final, st := dep.Run(ShardBatches(size, o.BadTraining), init, o.CoreOptions(seed))
	merged := Solution{FacilityCost: 1}
	for _, sol := range final {
		merged.Centers = append(merged.Centers, sol.Centers...)
	}
	for len(merged.Centers) > p.maxClusters {
		mergeClosest(&merged)
	}
	pts := streamdata.Stream(size*pointsPerInput, o.BadTraining)
	return Result{Clustering: finalClustering(merged, pts)}, st
}

// batches splits the stream into inputs.
func batches(size int, badTraining bool) []Batch {
	pts := streamdata.Stream(size*pointsPerInput, badTraining)
	bs := make([]Batch, size)
	for i := range bs {
		bs[i] = Batch{Points: pts[i*pointsPerInput : (i+1)*pointsPerInput]}
	}
	return bs
}

// finalClustering assigns every stream point to its nearest final center.
func finalClustering(sol Solution, pts []streamdata.Point) quality.Clustering {
	c := quality.Clustering{
		Points: make([][]float64, len(pts)),
		Assign: make([]int, len(pts)),
	}
	for i, pt := range pts {
		c.Points[i] = pt.Coords()
		best := math.Inf(1)
		for j := range sol.Centers {
			if d := streamdata.SqDist(sol.Centers[j].pos, pt.X); d < best {
				best = d
				c.Assign[i] = j
			}
		}
	}
	return c
}

// RunOriginal implements workload.Workload.
func (w *W) RunOriginal(seed uint64, size int) workload.Result {
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), 0, false)
}

func (w *W) run(seed uint64, size int, p params, refine int, badTraining bool) Result {
	bs := batches(size, badTraining)
	r := rng.New(seed)
	sol := Solution{FacilityCost: 1}
	compute := computeOutput(p)
	for _, b := range bs {
		_, sol = compute(r.Split(), b, sol)
	}
	pts := streamdata.Stream(size*pointsPerInput, badTraining)
	sol = refineSolution(sol, pts, refine)
	return Result{Clustering: finalClustering(sol, pts)}
}

// refineSolution runs Lloyd iterations over the full dataset — the
// "iterate more over the same dataset" quality mode of Fig. 16. Iterating
// also consolidates the solution toward the stream's natural component
// count before refining, as the offline k-median phase of the original
// benchmark does.
func refineSolution(sol Solution, pts []streamdata.Point, iters int) Solution {
	if iters > 0 {
		for len(sol.Centers) > streamdata.NumComponents {
			mergeClosest(&sol)
		}
	}
	for it := 0; it < iters; it++ {
		sums := make([][streamdata.Dim]float64, len(sol.Centers))
		counts := make([]float64, len(sol.Centers))
		for _, pt := range pts {
			best := math.Inf(1)
			bi := 0
			for j := range sol.Centers {
				if d := streamdata.SqDist(sol.Centers[j].pos, pt.X); d < best {
					best, bi = d, j
				}
			}
			for d := 0; d < streamdata.Dim; d++ {
				sums[bi][d] += pt.X[d]
			}
			counts[bi]++
		}
		for j := range sol.Centers {
			if counts[j] == 0 {
				continue
			}
			for d := 0; d < streamdata.Dim; d++ {
				sol.Centers[j].pos[d] = sums[j][d] / counts[j]
			}
			sol.Centers[j].weight = counts[j]
		}
	}
	return sol
}

// RunOracle implements workload.Workload: generous cluster budget and
// Lloyd refinement to convergence, fixed seed.
func (w *W) RunOracle(size int) workload.Result {
	p := w.resolve(workload.SpecOptions{}, true)
	p.maxClusters = streamdata.NumComponents
	p.minClusters = streamdata.NumComponents
	return w.run(0x0AC1E, size, p, 25, false)
}

// RunBoosted implements workload.Workload (Fig. 16).
func (w *W) RunBoosted(seed uint64, size int, factor float64) workload.Result {
	iters := int(factor) - 1
	if iters < 0 {
		iters = 0
	}
	return w.run(seed, size, w.resolve(workload.SpecOptions{}, true), iters, false)
}

// RunSTATS implements workload.Workload. Under core.ProtocolReservations
// the stream runs the sharded formulation: numShards independent
// sub-solutions, one state slot each, so same-round batches on distinct
// shards commit together (see ShardedDependence).
func (w *W) RunSTATS(seed uint64, size int, o workload.SpecOptions) (workload.Result, core.Stats) {
	def := w.resolve(o, true)
	if o.Protocol == core.ProtocolReservations {
		return runSharded(seed, size, def, o)
	}
	aux := w.resolve(o, false)
	bs := batches(size, o.BadTraining)
	dep := core.New(computeOutput(def), auxCode(aux), stateOps())
	_, final, st := dep.Run(bs, Solution{FacilityCost: 1}, o.CoreOptions(seed))
	pts := streamdata.Stream(size*pointsPerInput, o.BadTraining)
	return Result{Clustering: finalClustering(final, pts)}, st
}

// CostModel implements workload.Workload. The paper observes super-linear
// effects for this benchmark (better L1 locality, faster convergence when
// candidate order changes, §4.3); the model reflects the original's serial
// centroid-add sections limiting its TLP.
func (w *W) CostModel(size int, o workload.SpecOptions) workload.Model {
	def := w.resolve(o, true)
	aux := w.resolve(o, false)
	unit := func(p params) float64 {
		precCost := (p.prec[0].CostFactor() + p.prec[1].CostFactor() + p.prec[2].CostFactor()) / 3
		// Cost grows with the cluster budget (nearest-center scans).
		return precCost * (0.6 + 0.4*float64(p.maxClusters)/10.0)
	}
	win := o.Window
	if win < 1 {
		win = 1
	}
	return workload.Model{
		NumInputs:       size,
		InvocationWork:  unit(def),
		AuxWork:         float64(win) * unit(aux),
		InnerWidth:      16,
		InnerSerialFrac: 0.10, // solution updates serialize the original
		SyncWork:        0.04,
		ValidateWork:    0.001,
		MatchProb:       1, // by-construction acceptance
		RedoGain:        0,
	}
}
