package streamdata

import (
	"math"
	"testing"
)

func TestStreamFixedAcrossRuns(t *testing.T) {
	a := Stream(50, false)
	b := Stream(50, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	for _, p := range Stream(200, false) {
		if p.Label < 0 || p.Label >= NumComponents {
			t.Fatalf("label %d", p.Label)
		}
	}
}

func TestComponentsSeparated(t *testing.T) {
	// Points of one component cluster around their center; different
	// components are far apart on average.
	pts := Stream(500, false)
	centers := Centers()
	var within, between float64
	var nWithin, nBetween int
	for _, p := range pts {
		within += math.Sqrt(SqDist(p.X, centers[p.Label]))
		nWithin++
		other := (p.Label + 1) % NumComponents
		between += math.Sqrt(SqDist(p.X, centers[other]))
		nBetween++
	}
	if within/float64(nWithin) >= between/float64(nBetween)/2 {
		t.Fatalf("components not separated: within %v, between %v",
			within/float64(nWithin), between/float64(nBetween))
	}
}

func TestBadTrainingOverlaps(t *testing.T) {
	pts := Stream(500, true)
	// All points near the origin regardless of label.
	var maxNorm float64
	for _, p := range pts {
		n := math.Sqrt(SqDist(p.X, [Dim]float64{}))
		if n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm > 8 {
		t.Fatalf("bad-training points should overlap at origin: max norm %v", maxNorm)
	}
}

func TestSqDist(t *testing.T) {
	a := [Dim]float64{1, 0, 0, 0}
	b := [Dim]float64{0, 2, 0, 0}
	if got := SqDist(a, b); got != 5 {
		t.Fatalf("SqDist: %v", got)
	}
}

func TestCoords(t *testing.T) {
	p := Point{X: [Dim]float64{1, 2, 3, 4}}
	c := p.Coords()
	if len(c) != Dim || c[2] != 3 {
		t.Fatalf("coords: %v", c)
	}
	c[0] = 99
	if p.X[0] == 99 {
		t.Fatal("Coords aliases the point")
	}
}
