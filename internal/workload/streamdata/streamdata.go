// Package streamdata generates the multidimensional point streams shared by
// the streamcluster and streamclassifier workloads: a fixed Gaussian
// mixture, so the stream is statistically stationary — the property that
// lets a solution built from a window of recent points stand in for the
// solution built from the whole prefix.
package streamdata

import "repro/internal/rng"

// Dim is the dimensionality of stream points.
const Dim = 4

// NumComponents is the number of mixture components (the gold clustering).
const NumComponents = 5

// Point is one stream element; Label is its generating component (the gold
// class for streamclassifier, hidden from streamcluster).
type Point struct {
	X     [Dim]float64
	Label int
}

// Coords returns the coordinates as a slice.
func (p Point) Coords() []float64 {
	out := make([]float64, Dim)
	copy(out, p.X[:])
	return out
}

// Centers returns the mixture's true component centers.
func Centers() [NumComponents][Dim]float64 {
	var c [NumComponents][Dim]float64
	r := rng.New(0x57E4)
	for i := range c {
		for d := 0; d < Dim; d++ {
			c[i][d] = r.Range(-10, 10)
		}
	}
	return c
}

// Stream materializes n points. The input seed is fixed, so every run sees
// the same stream. badTraining produces the §4.6 variant: "points overlap
// in the multidimensional space" — every component collapses onto the same
// center, so training reveals nothing about cluster structure.
func Stream(n int, badTraining bool) []Point {
	seed := uint64(0x57E5)
	if badTraining {
		seed ^= 0xBAD
	}
	r := rng.New(seed)
	centers := Centers()
	pts := make([]Point, n)
	for i := range pts {
		comp := r.Intn(NumComponents)
		pts[i].Label = comp
		for d := 0; d < Dim; d++ {
			center := centers[comp][d]
			if badTraining {
				center = 0 // all components overlap
			}
			pts[i].X[d] = center + r.Norm()*1.2
		}
	}
	return pts
}

// SqDist returns the squared Euclidean distance between two points'
// coordinates.
func SqDist(a, b [Dim]float64) float64 {
	sum := 0.0
	for d := 0; d < Dim; d++ {
		diff := a[d] - b[d]
		sum += diff * diff
	}
	return sum
}
