// Package inputgen exports the benchmarks' native inputs for inspection:
// the synthetic camera streams, point streams, instrument portfolios, fluid
// impulses, videos and netlists that substitute for the paper's PARSEC
// native inputs. Inputs are fixed per (workload, size, variant), so an
// export is a reproducible artifact a user can diff, plot, or archive.
package inputgen

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/workload/bodytrack"
	"repro/internal/workload/canneal"
	"repro/internal/workload/facedet"
	"repro/internal/workload/fluidanimate"
	"repro/internal/workload/streamdata"
	"repro/internal/workload/swaptions"
)

// Dump is one workload's exported input set.
type Dump struct {
	Workload    string `json:"workload"`
	Size        int    `json:"size"`
	BadTraining bool   `json:"badTraining"`
	// Records is the number of input records exported.
	Records int `json:"records"`
	// Data is the workload-specific record list.
	Data any `json:"data"`
}

// Export materializes the named workload's inputs.
func Export(name string, size int, badTraining bool) (*Dump, error) {
	d := &Dump{Workload: name, Size: size, BadTraining: badTraining}
	switch name {
	case "bodytrack":
		frames := bodytrack.GenFrames(size, badTraining)
		d.Data, d.Records = frames, len(frames)
	case "facedet":
		frames := facedet.GenFrames(size, badTraining)
		d.Data, d.Records = frames, len(frames)
	case "fluidanimate":
		steps := fluidanimate.GenSteps(size, badTraining)
		d.Data, d.Records = steps, len(steps)
	case "streamcluster", "streamclassifier":
		pts := streamdata.Stream(size, badTraining)
		d.Data, d.Records = pts, len(pts)
	case "swaptions":
		instruments := swaptions.Portfolio(size, badTraining)
		d.Data, d.Records = instruments, len(instruments)
	case "canneal":
		if badTraining {
			return nil, fmt.Errorf("inputgen: canneal has no bad-training variant")
		}
		wires := canneal.Netlist(size)
		d.Data, d.Records = wires, len(wires)
	default:
		return nil, fmt.Errorf("inputgen: unknown workload %q", name)
	}
	return d, nil
}

// WriteJSON serializes the dump as indented JSON.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Summary returns a one-line description.
func (d *Dump) Summary() string {
	variant := "native"
	if d.BadTraining {
		variant = "non-representative (§4.6)"
	}
	return fmt.Sprintf("%s: %d records at size %d (%s inputs)", d.Workload, d.Records, d.Size, variant)
}
