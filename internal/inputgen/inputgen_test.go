package inputgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload/registry"
)

func TestExportAllWorkloads(t *testing.T) {
	for _, name := range registry.Names() {
		d, err := Export(name, 8, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Records == 0 {
			t.Fatalf("%s: no records", name)
		}
		if d.Workload != name || d.Size != 8 {
			t.Fatalf("%s: metadata %+v", name, d)
		}
	}
}

func TestExportUnknownWorkload(t *testing.T) {
	if _, err := Export("nope", 4, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	d1, _ := Export("bodytrack", 6, false)
	d2, _ := Export("bodytrack", 6, false)
	if err := d1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exports differ across calls")
	}
}

func TestBadTrainingVariantDiffers(t *testing.T) {
	var a, b bytes.Buffer
	d1, _ := Export("facedet", 10, false)
	d2, _ := Export("facedet", 10, true)
	d1.WriteJSON(&a)
	d2.WriteJSON(&b)
	if a.String() == b.String() {
		t.Fatal("bad-training inputs identical to native")
	}
}

func TestCannealHasNoBadVariant(t *testing.T) {
	if _, err := Export("canneal", 4, true); err == nil {
		t.Fatal("canneal bad-training accepted")
	}
}

func TestJSONDecodes(t *testing.T) {
	d, _ := Export("swaptions", 5, false)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Workload string `json:"workload"`
		Records  int    `json:"records"`
		Data     []struct {
			Strike float64 `json:"Strike"`
		} `json:"data"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Workload != "swaptions" || decoded.Records != 5 || len(decoded.Data) != 5 {
		t.Fatalf("decoded: %+v", decoded)
	}
	if decoded.Data[0].Strike <= 0 {
		t.Fatal("instrument fields not serialized")
	}
}

func TestSummary(t *testing.T) {
	d, _ := Export("streamcluster", 12, false)
	s := d.Summary()
	if !strings.Contains(s, "streamcluster") || !strings.Contains(s, "native") {
		t.Fatalf("summary: %q", s)
	}
	d2, _ := Export("bodytrack", 4, true)
	if !strings.Contains(d2.Summary(), "non-representative") {
		t.Fatalf("bad summary: %q", d2.Summary())
	}
}
