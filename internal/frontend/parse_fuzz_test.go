package frontend

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// renderCanonical rebuilds extension source from parsed declarations —
// the inverse direction FuzzParse uses to check the parser round-trips:
// whatever Translate accepts, its canonical re-rendering must parse back
// to the same declarations.
func renderCanonical(out *Output) string {
	var b strings.Builder
	for _, t := range out.Tradeoffs {
		fmt.Fprintf(&b, "tradeoff %s {\n", t.Name)
		if t.Kind == "constant" {
			fmt.Fprintf(&b, "kind constant;\nvalues %d..%d;\n", t.Lo, t.Hi)
		} else {
			fmt.Fprintf(&b, "kind %s;\nvalues %s;\n", t.Kind, strings.Join(t.Names, ", "))
		}
		fmt.Fprintf(&b, "default %d;\n}\n", t.Default)
	}
	for _, d := range out.Deps {
		fmt.Fprintf(&b, "statedep %s {\n", d.Name)
		fmt.Fprintf(&b, "input %s;\nstate %s;\noutput %s;\n", d.Input, d.State, d.Output)
		if len(d.Uses) > 0 {
			fmt.Fprintf(&b, "compute %s uses %s;\n", d.Compute, strings.Join(d.Uses, ", "))
		} else {
			fmt.Fprintf(&b, "compute %s;\n", d.Compute)
		}
		if d.Compare != "" {
			fmt.Fprintf(&b, "compare %s;\n", d.Compare)
		}
		if d.Window > 0 {
			fmt.Fprintf(&b, "window %d;\n", d.Window)
		}
		if d.Slots > 0 {
			fmt.Fprintf(&b, "slots %d;\n", d.Slots)
		}
		for _, e := range d.Reserve {
			fmt.Fprintf(&b, "reserve %s;\n", e)
		}
		for _, e := range d.Touches {
			fmt.Fprintf(&b, "touches %s;\n", e)
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// stripLines zeroes the source positions, which legitimately differ
// between an original and its canonical re-rendering.
func stripLines(out *Output) ([]TradeoffDecl, []DepDecl) {
	ts := make([]TradeoffDecl, len(out.Tradeoffs))
	for i, t := range out.Tradeoffs {
		t.Line, t.Col = 0, 0
		ts[i] = t
	}
	ds := make([]DepDecl, len(out.Deps))
	for i, d := range out.Deps {
		d.Line, d.Col = 0, 0
		d.Reserve = stripIndexLines(d.Reserve)
		d.Touches = stripIndexLines(d.Touches)
		ds[i] = d
	}
	return ts, ds
}

// stripIndexLines zeroes the per-entry source lines of reserve/touches
// declarations (copying the slice, so the original Output is untouched).
func stripIndexLines(es []IndexDecl) []IndexDecl {
	if es == nil {
		return nil
	}
	out := make([]IndexDecl, len(es))
	for i, e := range es {
		e.Line = 0
		out[i] = e
	}
	return out
}

// FuzzParse fuzzes the tradeoff/statedep block parser with a stronger
// property than FuzzTranslate's no-panic checks: every accepted input
// must round-trip. The parsed declarations are re-rendered to canonical
// extension source, re-parsed, and compared — so the parser can neither
// lose information nor accept something its own output grammar cannot
// express. Run with `make fuzz` (or `go test -fuzz=FuzzParse`); under
// plain `go test` the seed corpus runs.
func FuzzParse(f *testing.F) {
	if src, err := os.ReadFile("../../testdata/bodytrack.stats"); err == nil {
		f.Add(string(src))
	}
	seeds := []string{
		"tradeoff TO_layers {\n    kind constant;\n    values 1..5;\n    default 3;\n}\n",
		"tradeoff TO_prec {\n    kind type;\n    values half, single, double;\n    default 1;\n}\n",
		"tradeoff TO_impl {\n    kind function;\n    values fast_path, slow_path;\n    default 0;\n}\n",
		"statedep track {\n    input Frame;\n    state Model;\n    output Pose;\n    compute update;\n    compare cmp;\n}\n",
		"tradeoff A {\n kind constant;\n values 0..0;\n default 0;\n}\nstatedep d {\n input I;\n state S;\n output O;\n compute f uses A;\n}\n",
		"host line\ntradeoff T {\n kind constant;\n values 2..9;\n default 7;\n}\nmore host\n",
		"tradeoff T {\n kind constant;\n values 1..3;\n default 0;\n kind constant;\n}\n", // duplicate field
		"statedep d {\n input a;b;\n state S;\n output O;\n compute f;\n}\n",              // ';' inside a value
		"tradeoff x{y {\n kind type;\n values a b, c;\n default 1;\n}\n",                  // odd but legal names
		"statedep d {\n input I;\n state S;\n output O;\n compute f uses A uses B;\n}\n",
		"tradeoff broken {\n kind banana;\n}\n",
		"statedep d {\n compute f;\n}\n",
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n slots 4;\n reserve shard;\n touches shard;\n}\n",
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n slots 8;\n reserve 2*blk+1;\n touches 2*blk;\n touches 3;\n}\n",
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n reserve x;\n}\n", // reserve without slots
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n slots 0;\n}\n",   // slots without reserve
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n slots 4;\n reserve 1*x+0;\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		out, err := Translate(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "frontend: line ") {
				t.Fatalf("unpositioned error: %v", err)
			}
			return
		}
		if len(out.Tradeoffs) == 0 && len(out.Deps) == 0 {
			return // pure host code: nothing to round-trip
		}
		canon := renderCanonical(out)
		again, err := Translate(canon)
		if err != nil {
			t.Fatalf("canonical re-rendering rejected: %v\ncanonical:\n%s", err, canon)
		}
		ts1, ds1 := stripLines(out)
		ts2, ds2 := stripLines(again)
		if !reflect.DeepEqual(ts1, ts2) {
			t.Fatalf("tradeoffs did not round-trip:\n got %+v\nwant %+v\ncanonical:\n%s", ts2, ts1, canon)
		}
		if !reflect.DeepEqual(ds1, ds2) {
			t.Fatalf("deps did not round-trip:\n got %+v\nwant %+v\ncanonical:\n%s", ds2, ds1, canon)
		}
	})
}
