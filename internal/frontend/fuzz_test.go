package frontend

import (
	"strings"
	"testing"
)

// FuzzTranslate asserts the front-end never panics and maintains its
// invariants on arbitrary input: run with `go test -fuzz=FuzzTranslate`
// to explore; under plain `go test` the seed corpus runs.
func FuzzTranslate(f *testing.F) {
	seeds := []string{
		"",
		"plain host code\nint main() {}\n",
		"tradeoff T {\n kind constant;\n values 1..3;\n default 0;\n}\n",
		"tradeoff T {\n kind type;\n values a, b;\n default 1;\n}\n",
		"statedep d {\n input I;\n state S;\n output O;\n compute f;\n}\n",
		"tradeoff T {\n kind constant;\n values 1..3;\n default 0;\n}\nstatedep d {\n input I;\n state S;\n output O;\n compute f uses T;\n}\n",
		"tradeoff broken {\n",
		"tradeoff X {\n kind banana;\n}\n",
		"statedep {\n}\n",
		"tradeoff T {\n kind constant;\n values 9..1;\n default 0;\n}\n",
		"statedep d {\n compute f uses Missing;\n input I;\n state S;\n output O;\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		out, err := Translate(src)
		if err != nil {
			// Errors must be positioned front-end diagnostics.
			if !strings.HasPrefix(err.Error(), "frontend: line ") {
				t.Fatalf("unpositioned error: %v", err)
			}
			return
		}
		// Invariants of a successful translation.
		if out.GeneratedLOC < 1 {
			t.Fatalf("generated LOC %d", out.GeneratedLOC)
		}
		for i, tr := range out.Tradeoffs {
			if tr.ID != 42+i {
				t.Fatalf("tradeoff %d id %d", i, tr.ID)
			}
			if tr.Size() <= 0 {
				t.Fatalf("tradeoff %s empty", tr.Name)
			}
			if tr.Default < 0 || tr.Default >= tr.Size() {
				t.Fatalf("tradeoff %s default out of range", tr.Name)
			}
		}
		for _, d := range out.Deps {
			if d.Compute == "" || d.Input == "" || d.State == "" || d.Output == "" {
				t.Fatalf("incomplete dep %+v", d)
			}
		}
		// The extension keywords never survive into standard source.
		for _, line := range strings.Split(out.StandardSource, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "tradeoff ") || strings.HasPrefix(trimmed, "statedep ") {
				t.Fatalf("extension block leaked: %q", line)
			}
		}
	})
}
