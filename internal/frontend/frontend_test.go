package frontend

import (
	"strings"
	"testing"
)

// fixture mirrors the paper's bodytrack example (Figures 8 and 10) in the
// extension syntax.
const fixture = `// host code before
#include <vector>

tradeoff TO_numAnnealingLayers {
    kind constant;
    values 1..10;
    default 4;
}

tradeoff TO_weightType {
    kind type;
    values half, single, double;
    default 2;
}

tradeoff TO_sqrt {
    kind function;
    values sqrt_exact, sqrt_newton2, sqrt_newton1;
    default 0;
}

statedep track {
    input Frame;
    state BodyModel;
    output Positions;
    compute updateModel uses TO_numAnnealingLayers, TO_weightType, TO_sqrt;
    compare compareModels;
}

// host code after
int main() { return 0; }
`

func TestTranslateFixture(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tradeoffs) != 3 {
		t.Fatalf("tradeoffs: %d", len(out.Tradeoffs))
	}
	if len(out.Deps) != 1 {
		t.Fatalf("deps: %d", len(out.Deps))
	}
	d := out.Deps[0]
	if d.Name != "track" || d.Compute != "updateModel" || d.Compare != "compareModels" {
		t.Fatalf("dep: %+v", d)
	}
	if len(d.Uses) != 3 || d.Uses[0] != "TO_numAnnealingLayers" {
		t.Fatalf("uses: %v", d.Uses)
	}
}

func TestTradeoffFields(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	layers := out.Tradeoffs[0]
	if layers.Kind != "constant" || layers.Lo != 1 || layers.Hi != 10 || layers.Default != 4 {
		t.Fatalf("layers: %+v", layers)
	}
	if layers.Size() != 10 {
		t.Fatalf("layers size: %d", layers.Size())
	}
	wt := out.Tradeoffs[1]
	if wt.Kind != "type" || len(wt.Names) != 3 || wt.Names[2] != "double" {
		t.Fatalf("weight type: %+v", wt)
	}
	// IDs assigned in order starting at 42 (Figure 11's T_42).
	if layers.ID != 42 || wt.ID != 43 || out.Tradeoffs[2].ID != 44 {
		t.Fatalf("ids: %d %d %d", layers.ID, wt.ID, out.Tradeoffs[2].ID)
	}
}

func TestHostCodePassesThrough(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"// host code before", "#include <vector>", "int main() { return 0; }"} {
		if !strings.Contains(out.StandardSource, want) {
			t.Fatalf("standard source lost %q", want)
		}
	}
	// The extension keywords must be gone.
	if strings.Contains(out.StandardSource, "tradeoff TO_") || strings.Contains(out.StandardSource, "statedep ") {
		t.Fatal("extension blocks leaked into standard source")
	}
}

func TestGeneratedHeaderMatchesFigure11(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#pragma once",
		"int64_t T_42(int64_t p) { return p; }",
		"auto T_42_getValue(int64_t i) { return i + 1; }",
		"int64_t T_42_size() { return 10; }",
		"int64_t T_42_getDefaultIndex() { return 4; }",
		`"T_42_getValue T_42_size T_42_getDefaultIndex T_42"`,
	} {
		if !strings.Contains(out.Header, want) {
			t.Fatalf("header missing %q\n%s", want, out.Header)
		}
	}
}

func TestLoweredDepInstantiation(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"StateDependence<Frame, BodyModel, Positions> track",
		"track.start(); track.join();",
		"#define TO_numAnnealingLayers T_42(42)",
	} {
		if !strings.Contains(out.StandardSource, want) {
			t.Fatalf("standard source missing %q", want)
		}
	}
}

func TestGeneratedLOCPositive(t *testing.T) {
	out, err := Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if out.GeneratedLOC <= 0 {
		t.Fatalf("generated LOC: %d", out.GeneratedLOC)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unterminated", "tradeoff X {\nkind constant;", "unterminated"},
		{"missing semicolon", "tradeoff X {\nkind constant\n}", "';'"},
		{"bad kind", "tradeoff X {\nkind banana;\nvalues 1..2;\ndefault 0;\n}", "unknown kind"},
		{"bad range", "tradeoff X {\nkind constant;\nvalues 5..1;\ndefault 0;\n}", "bad range"},
		{"missing kind", "tradeoff X {\nvalues 1..2;\ndefault 0;\n}", "missing kind"},
		{"default out of range", "tradeoff X {\nkind constant;\nvalues 1..2;\ndefault 5;\n}", "default index"},
		{"constant with names", "tradeoff X {\nkind constant;\nvalues a, b;\ndefault 0;\n}", "range"},
		{"type with range", "tradeoff X {\nkind type;\nvalues 1..2;\ndefault 0;\n}", "value names"},
		{"no name", "tradeoff {\nkind constant;\nvalues 1..2;\ndefault 0;\n}", "name"},
		{"dep missing input", "statedep d {\nstate S;\noutput O;\ncompute f;\n}", "missing input"},
		{"dep unknown field", "statedep d {\nbanana x;\n}", "unknown statedep field"},
		{"undeclared use", "statedep d {\ninput I;\nstate S;\noutput O;\ncompute f uses TO_missing;\n}", "undeclared tradeoff"},
	}
	for _, c := range cases {
		if _, err := Translate(c.src); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error %v does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestErrorCarriesLine(t *testing.T) {
	_, err := Translate("x\ny\ntradeoff X {\nkind banana;\n}")
	fe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type: %T", err)
	}
	if fe.Line != 4 {
		t.Fatalf("error line: %d", fe.Line)
	}
}

func TestCommentsAndBlankLinesInBlocks(t *testing.T) {
	src := "tradeoff X {\n// a comment\n\nkind constant;\nvalues 1..3;\ndefault 1;\n}"
	out, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tradeoffs[0].Size() != 3 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestDepWithoutCompare(t *testing.T) {
	src := "statedep d {\ninput I;\nstate S;\noutput O;\ncompute f;\n}"
	out, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Deps[0].Compare != "" {
		t.Fatal("compare should be optional")
	}
}
