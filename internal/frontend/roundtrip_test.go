package frontend

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// declSpec is a generated tradeoff declaration used by the round-trip
// property test: any structurally valid declaration must parse back to
// exactly what was generated.
type declSpec struct {
	Kind    int   // 0 constant, 1 type, 2 function
	Lo, Hi  int64 // constant range
	Names   int   // enum value count
	DefIdx  int64
	HostPre int // host lines before the block
}

func (d declSpec) normalize() declSpec {
	d.Kind = abs(d.Kind) % 3
	d.Lo = abs64(d.Lo) % 50
	d.Hi = d.Lo + abs64(d.Hi)%20
	d.Names = abs(d.Names)%5 + 1
	if d.Kind == 0 {
		d.DefIdx = abs64(d.DefIdx) % (d.Hi - d.Lo + 1)
	} else {
		d.DefIdx = abs64(d.DefIdx) % int64(d.Names)
	}
	d.HostPre = abs(d.HostPre) % 4
	return d
}

func (d declSpec) source(i int) string {
	var b strings.Builder
	for h := 0; h < d.HostPre; h++ {
		fmt.Fprintf(&b, "// host line %d-%d\n", i, h)
	}
	fmt.Fprintf(&b, "tradeoff TO_gen%d {\n", i)
	switch d.Kind {
	case 0:
		fmt.Fprintf(&b, "    kind constant;\n    values %d..%d;\n", d.Lo, d.Hi)
	case 1:
		b.WriteString("    kind type;\n    values ")
	default:
		b.WriteString("    kind function;\n    values ")
	}
	if d.Kind != 0 {
		var names []string
		for n := 0; n < d.Names; n++ {
			names = append(names, fmt.Sprintf("val%d_%d", i, n))
		}
		b.WriteString(strings.Join(names, ", "))
		b.WriteString(";\n")
	}
	fmt.Fprintf(&b, "    default %d;\n}\n", d.DefIdx)
	return b.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTranslateRoundTripProperty(t *testing.T) {
	f := func(specs []declSpec) bool {
		if len(specs) > 6 {
			specs = specs[:6]
		}
		var src strings.Builder
		for i := range specs {
			specs[i] = specs[i].normalize()
			src.WriteString(specs[i].source(i))
		}
		out, err := Translate(src.String())
		if err != nil {
			t.Logf("translate error: %v\nsource:\n%s", err, src.String())
			return false
		}
		if len(out.Tradeoffs) != len(specs) {
			return false
		}
		for i, d := range specs {
			got := out.Tradeoffs[i]
			if got.Name != fmt.Sprintf("TO_gen%d", i) {
				return false
			}
			wantKind := []string{"constant", "type", "function"}[d.Kind]
			if got.Kind != wantKind || got.Default != d.DefIdx {
				return false
			}
			if d.Kind == 0 {
				if got.Lo != d.Lo || got.Hi != d.Hi {
					return false
				}
			} else if int(got.Size()) != d.Names {
				return false
			}
			// IDs are assigned sequentially from 42.
			if got.ID != 42+i {
				return false
			}
		}
		// Host lines survive into the standard source.
		for i, d := range specs {
			for h := 0; h < d.HostPre; h++ {
				if !strings.Contains(out.StandardSource, fmt.Sprintf("// host line %d-%d", i, h)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateHeaderConsistentWithDeclsProperty(t *testing.T) {
	f := func(specs []declSpec) bool {
		if len(specs) > 4 {
			specs = specs[:4]
		}
		var src strings.Builder
		for i := range specs {
			specs[i] = specs[i].normalize()
			src.WriteString(specs[i].source(i))
		}
		out, err := Translate(src.String())
		if err != nil {
			return false
		}
		for _, decl := range out.Tradeoffs {
			// Every declared tradeoff appears in the generated header
			// with its size and default accessors.
			for _, want := range []string{
				fmt.Sprintf("int64_t T_%d(int64_t p)", decl.ID),
				fmt.Sprintf("T_%d_size() { return %d; }", decl.ID, decl.Size()),
				fmt.Sprintf("T_%d_getDefaultIndex() { return %d; }", decl.ID, decl.Default),
			} {
				if !strings.Contains(out.Header, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
