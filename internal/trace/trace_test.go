package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
)

func simulateParallel(tasks, threads int) platform.Result {
	g := &platform.Graph{}
	for i := 0; i < tasks; i++ {
		g.Add(1)
	}
	return platform.Simulate(platform.Haswell28(false), g, threads)
}

func TestRenderBasics(t *testing.T) {
	res := simulateParallel(8, 4)
	out := String(res)
	if !strings.Contains(out, "schedule: 8 tasks on 4 threads") {
		t.Fatalf("header missing:\n%s", out)
	}
	// Four thread rows.
	for _, row := range []string{"t00", "t01", "t02", "t03"} {
		if !strings.Contains(out, row) {
			t.Fatalf("row %s missing:\n%s", row, out)
		}
	}
	// Two waves of work: rows should be fully busy (no '.' gaps).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, l := range lines[1:] {
		cells := strings.SplitN(l, " ", 2)[1]
		if strings.Contains(cells, ".") {
			t.Fatalf("unexpected idle cell in %q", l)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := String(platform.Result{})
	if !strings.Contains(out, "empty schedule") {
		t.Fatalf("empty schedule: %q", out)
	}
}

func TestRenderCapsThreads(t *testing.T) {
	res := simulateParallel(28, 28)
	var b strings.Builder
	Render(&b, res, Options{MaxThreads: 4})
	out := b.String()
	if !strings.Contains(out, "more threads") {
		t.Fatalf("cap note missing:\n%s", out)
	}
	if strings.Contains(out, "t05") {
		t.Fatal("row beyond cap rendered")
	}
}

func TestUtilization(t *testing.T) {
	// 8 equal tasks on 4 threads: perfectly utilized.
	res := simulateParallel(8, 4)
	if u := Utilization(res); math.Abs(u-1) > 1e-9 {
		t.Fatalf("utilization: %v", u)
	}
	// 5 tasks on 4 threads: 5/8 of thread-time busy.
	res = simulateParallel(5, 4)
	if u := Utilization(res); math.Abs(u-5.0/8) > 1e-9 {
		t.Fatalf("imbalanced utilization: %v", u)
	}
	if Utilization(platform.Result{}) != 0 {
		t.Fatal("empty utilization")
	}
}

func TestAssignmentsCoverWork(t *testing.T) {
	res := simulateParallel(10, 3)
	busy := 0.0
	for _, a := range res.Assignments {
		if a.End < a.Start {
			t.Fatalf("inverted assignment %+v", a)
		}
		busy += a.End - a.Start
	}
	if math.Abs(busy-10) > 1e-9 {
		t.Fatalf("assignments cover %v work units, want 10", busy)
	}
}

func TestCriticalThread(t *testing.T) {
	g := &platform.Graph{}
	g.Add(5) // one long task
	g.Add(1)
	res := platform.Simulate(platform.Haswell28(false), g, 2)
	th, busy := CriticalThread(res)
	if busy != 5 {
		t.Fatalf("critical busy: %v (thread %d)", busy, th)
	}
}

func TestSummary(t *testing.T) {
	res := simulateParallel(4, 4)
	s := Summary(res)
	if !strings.Contains(s, "4 tasks") || !strings.Contains(s, "utilization 100%") {
		t.Fatalf("summary: %q", s)
	}
}

func TestChainShowsSerialization(t *testing.T) {
	// A serialized chain on many threads leaves most rows idle: the
	// Figure 5a picture.
	g := &platform.Graph{}
	prev := g.Add(1)
	for i := 0; i < 7; i++ {
		prev = g.Add(1, prev)
	}
	res := platform.Simulate(platform.Haswell28(false), g, 4)
	if u := Utilization(res); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("chain utilization: %v (want 0.25)", u)
	}
}
