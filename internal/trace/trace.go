// Package trace renders platform-simulator schedules as ASCII Gantt
// charts, one row per hardware thread. It is the debugging view behind the
// execution-model diagrams of Figure 5: the serialized chain of the
// conventional execution versus the overlapped groups, auxiliary tasks and
// validations of the speculative one.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/platform"
)

// Options controls rendering.
type Options struct {
	// Width is the chart width in character cells (default 80).
	Width int
	// MaxThreads caps the number of thread rows shown (default: all).
	MaxThreads int
}

// Render writes an ASCII Gantt chart of the schedule. Each row is one
// hardware thread; each task occupies its time span, drawn with a cycling
// glyph so adjacent tasks are distinguishable. Idle time is '.'.
func Render(w io.Writer, res platform.Result, o Options) {
	if o.Width <= 0 {
		o.Width = 80
	}
	if res.Makespan <= 0 || len(res.Assignments) == 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	// Group assignments per thread.
	perThread := map[int][]platform.Assignment{}
	maxThread := 0
	for _, a := range res.Assignments {
		perThread[a.Thread] = append(perThread[a.Thread], a)
		if a.Thread > maxThread {
			maxThread = a.Thread
		}
	}
	threads := maxThread + 1
	if o.MaxThreads > 0 && threads > o.MaxThreads {
		threads = o.MaxThreads
	}

	scale := float64(o.Width) / res.Makespan
	glyphs := []byte("#%@*+=o")
	fmt.Fprintf(w, "schedule: %d tasks on %d threads, makespan %.2f (one column = %.3f)\n",
		len(res.Assignments), res.ThreadsUsed, res.Makespan, res.Makespan/float64(o.Width))
	for ti := 0; ti < threads; ti++ {
		row := make([]byte, o.Width)
		for i := range row {
			row[i] = '.'
		}
		as := perThread[ti]
		sort.Slice(as, func(i, j int) bool { return as[i].Start < as[j].Start })
		for _, a := range as {
			lo := int(a.Start * scale)
			hi := int(a.End * scale)
			if hi >= o.Width {
				hi = o.Width - 1
			}
			if hi < lo {
				hi = lo
			}
			g := glyphs[a.Task%len(glyphs)]
			for c := lo; c <= hi; c++ {
				row[c] = g
			}
		}
		fmt.Fprintf(w, "t%02d %s\n", ti, row)
	}
	if threads < maxThread+1 {
		fmt.Fprintf(w, "... (%d more threads)\n", maxThread+1-threads)
	}
}

// Utilization returns the fraction of available thread-time spent busy.
func Utilization(res platform.Result) float64 {
	if res.Makespan <= 0 || res.ThreadsUsed == 0 {
		return 0
	}
	busy := 0.0
	for _, a := range res.Assignments {
		busy += a.End - a.Start
	}
	return busy / (res.Makespan * float64(res.ThreadsUsed))
}

// Summary returns a one-line description of the schedule.
func Summary(res platform.Result) string {
	return fmt.Sprintf("makespan %.2f, %d tasks, utilization %.0f%%",
		res.Makespan, len(res.Assignments), 100*Utilization(res))
}

// CriticalThread returns the busiest thread and its busy time.
func CriticalThread(res platform.Result) (thread int, busy float64) {
	per := map[int]float64{}
	for _, a := range res.Assignments {
		per[a.Thread] += a.End - a.Start
	}
	best := -1.0
	for t, b := range per {
		if b > best || (b == best && t < thread) {
			thread, best = t, b
		}
	}
	if best < 0 {
		best = 0
	}
	return thread, best
}

// String renders to a string with default options.
func String(res platform.Result) string {
	var b strings.Builder
	Render(&b, res, Options{})
	return b.String()
}
