package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// EventOptions controls RenderEvents.
type EventOptions struct {
	// Width is the chart width in character cells (default 80).
	Width int
	// MaxRows caps the number of group rows shown (default: all).
	MaxRows int
}

// Event-row glyphs: a group's execution span is '=', overlaid with marks
// at the instants the engine recorded. Later marks win a contested cell,
// except that terminal outcomes (A, S) are never overdrawn.
const (
	glyphSpan     = '='
	glyphAux      = 'a'
	glyphMatch    = 'v'
	glyphMismatch = 'x'
	glyphRedo     = 'r'
	glyphAbort    = 'A'
	glyphSquash   = 'S'
	glyphFallback = 'F'
)

// groupLife is a group's reconstructed lifecycle: its execution span plus
// every instant the engine logged against it.
type groupLife struct {
	id         int32
	start, end int64
	hasSpan    bool
	marks      []obs.Event
}

// RenderEvents writes an ASCII Gantt chart of an observed (not simulated)
// run from the tracer's event log — the live counterpart of Render's
// Figure 5 view. One row per speculation group: the execution span is
// drawn '=', auxiliary-state production 'a', validation outcomes 'v'
// (match) and 'x' (mismatch), re-executions 'r', aborts 'A', squashes 'S'
// and the fallback start 'F'. Below the groups, one row per scheduler
// lane shows task dispatches: 'L' a local-deque hit, 'S' a steal, '-' the
// task running until its finish mark.
func RenderEvents(w io.Writer, events []obs.Event, o EventOptions) {
	if o.Width <= 0 {
		o.Width = 80
	}
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	lo, hi := events[0].TS, events[0].TS
	for _, e := range events {
		if e.TS < lo {
			lo = e.TS
		}
		if e.TS > hi {
			hi = e.TS
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	col := func(ts int64) int {
		c := int((ts - lo) * int64(o.Width) / span)
		if c >= o.Width {
			c = o.Width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	groups := map[int32]*groupLife{}
	life := func(g int32) *groupLife {
		gl := groups[g]
		if gl == nil {
			gl = &groupLife{id: g, start: hi, end: lo}
			groups[g] = gl
		}
		return gl
	}
	lanes := map[int16][]obs.Event{}
	for _, e := range events {
		switch e.Kind {
		case obs.EvGroupStart:
			gl := life(e.Group)
			gl.hasSpan = true
			if e.TS < gl.start {
				gl.start = e.TS
			}
			if e.TS > gl.end {
				gl.end = e.TS
			}
		case obs.EvGroupFinish:
			gl := life(e.Group)
			gl.hasSpan = true
			if e.TS > gl.end {
				gl.end = e.TS
			}
		case obs.EvAuxProduced, obs.EvValidateMatch, obs.EvValidateMismatch,
			obs.EvRedo, obs.EvAbort, obs.EvSquash:
			gl := life(e.Group)
			gl.marks = append(gl.marks, e)
		case obs.EvFallback:
			// Keyed to the aborting boundary's group; mark it there.
			gl := life(e.Group)
			gl.marks = append(gl.marks, e)
		case obs.EvSteal, obs.EvLocalHit, obs.EvTaskFinish:
			lanes[e.Lane] = append(lanes[e.Lane], e)
		case obs.EvLaneCPUCommitted, obs.EvLaneCPUWasted:
			// Attribution summaries, emitted at run end; they carry no
			// schedule position worth a Gantt mark (the telemetry layer's
			// span and waterfall views render them instead).
		}
	}

	ids := make([]int32, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	shown := len(ids)
	if o.MaxRows > 0 && shown > o.MaxRows {
		shown = o.MaxRows
	}

	fmt.Fprintf(w, "observed run: %d events, %d groups, %d scheduler lanes, %s\n",
		len(events), len(groups), len(lanes), fmtDur(span))
	fmt.Fprintln(w, "groups: '=' executing, a aux, v match, x mismatch, r redo, A abort, S squash, F fallback")
	for _, id := range ids[:shown] {
		gl := groups[id]
		row := make([]byte, o.Width)
		for i := range row {
			row[i] = '.'
		}
		if gl.hasSpan {
			for c := col(gl.start); c <= col(gl.end); c++ {
				row[c] = glyphSpan
			}
		}
		for _, m := range gl.marks {
			c := col(m.TS)
			if row[c] == glyphAbort || row[c] == glyphSquash {
				continue
			}
			row[c] = markGlyph(m.Kind)
		}
		fmt.Fprintf(w, "g%03d %s\n", id, row)
	}
	if shown < len(ids) {
		fmt.Fprintf(w, "... (%d more groups)\n", len(ids)-shown)
	}

	laneIDs := make([]int16, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	if len(laneIDs) > 0 {
		fmt.Fprintln(w, "lanes: L local dispatch, S steal, '-' task running")
	}
	for _, l := range laneIDs {
		row := make([]byte, o.Width)
		for i := range row {
			row[i] = '.'
		}
		evs := lanes[l]
		sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		open := -1 // column of the unmatched dispatch, if any
		for _, e := range evs {
			c := col(e.TS)
			switch e.Kind {
			case obs.EvSteal, obs.EvLocalHit:
				g := byte('L')
				if e.Kind == obs.EvSteal {
					g = 'S'
				}
				row[c] = g
				open = c
			case obs.EvTaskFinish:
				if open >= 0 {
					for i := open + 1; i <= c; i++ {
						if row[i] == '.' {
							row[i] = '-'
						}
					}
					open = -1
				}
			}
		}
		fmt.Fprintf(w, "w%03d %s\n", l, row)
	}
}

// markGlyph maps an instant event kind to its chart glyph.
func markGlyph(k obs.EventKind) byte {
	switch k {
	case obs.EvAuxProduced:
		return glyphAux
	case obs.EvValidateMatch:
		return glyphMatch
	case obs.EvValidateMismatch:
		return glyphMismatch
	case obs.EvRedo:
		return glyphRedo
	case obs.EvAbort:
		return glyphAbort
	case obs.EvSquash:
		return glyphSquash
	case obs.EvFallback:
		return glyphFallback
	}
	return '?'
}

// fmtDur renders a nanosecond span compactly for the chart header.
func fmtDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// EventString renders events to a string with default options.
func EventString(events []obs.Event) string {
	var b strings.Builder
	RenderEvents(&b, events, EventOptions{})
	return b.String()
}
