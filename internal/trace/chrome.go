package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Chrome trace_event pids: the engine's group timeline and the
// scheduler's per-worker timeline render as two processes.
const (
	chromePidEngine    = 1
	chromePidScheduler = 2
)

// ChromeTrace writes the observed event log in the Chrome trace_event JSON
// format, loadable in chrome://tracing or https://ui.perfetto.dev. Group
// executions become complete ("X") spans under the "engine" process, one
// track per group; scheduler dispatch→finish pairs become spans under the
// "scheduler" process, one track per worker lane; everything else —
// auxiliary-state production, validation outcomes, redos, aborts,
// squashes, fallback — becomes instant ("i") events on the group's track.
// Output is deterministic for a given event slice.
func ChromeTrace(w io.Writer, events []obs.Event) error {
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	var recs []string
	meta := func(pid int, tid int64, what, name string) {
		recs = append(recs, fmt.Sprintf(
			`{"name":"%s","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			what, pid, tid, name))
	}
	meta(chromePidEngine, 0, "process_name", "engine")
	meta(chromePidScheduler, 0, "process_name", "scheduler")

	// µs timestamps with nanosecond precision, the unit trace viewers use.
	us := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e3) }

	type openSpan struct {
		ts     int64
		stolen bool
	}
	groupOpen := map[int32]int64{}
	laneOpen := map[int16]openSpan{}
	groupsSeen := map[int32]bool{}
	lanesSeen := map[int16]bool{}

	for _, e := range sorted {
		switch e.Kind {
		case obs.EvGroupStart:
			groupsSeen[e.Group] = true
			groupOpen[e.Group] = e.TS
		case obs.EvGroupFinish:
			groupsSeen[e.Group] = true
			start, ok := groupOpen[e.Group]
			if !ok {
				start = e.TS
			}
			delete(groupOpen, e.Group)
			recs = append(recs, fmt.Sprintf(
				`{"name":"group %d","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"outputs":%d}}`,
				e.Group, chromePidEngine, e.Group, us(start), us(e.TS-start), e.Arg))
		case obs.EvAuxProduced, obs.EvValidateMatch, obs.EvValidateMismatch,
			obs.EvRedo, obs.EvAbort, obs.EvSquash, obs.EvFallback:
			groupsSeen[e.Group] = true
			recs = append(recs, fmt.Sprintf(
				`{"name":"%s","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{"arg":%d}}`,
				e.Kind, chromePidEngine, e.Group, us(e.TS), e.Arg))
		case obs.EvSteal, obs.EvLocalHit:
			lanesSeen[e.Lane] = true
			laneOpen[e.Lane] = openSpan{ts: e.TS, stolen: e.Kind == obs.EvSteal}
		case obs.EvLaneCPUCommitted, obs.EvLaneCPUWasted:
			// Run-end attribution summaries; their timestamps would draw
			// misleading instants far from the work they account for.
		case obs.EvTaskFinish:
			lanesSeen[e.Lane] = true
			sp, ok := laneOpen[e.Lane]
			if !ok {
				continue // dispatch record evicted by the bounded ring
			}
			delete(laneOpen, e.Lane)
			name := "task (local)"
			if sp.stolen {
				name = "task (stolen)"
			}
			recs = append(recs, fmt.Sprintf(
				`{"name":"%s","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{}}`,
				name, chromePidScheduler, e.Lane, us(sp.ts), us(e.TS-sp.ts)))
		}
	}
	// Spans still open when the log ends render as instants so they are
	// not silently lost. Sorted so the output stays deterministic.
	og := make([]int32, 0, len(groupOpen))
	for g := range groupOpen {
		og = append(og, g)
	}
	sort.Slice(og, func(i, j int) bool { return og[i] < og[j] })
	for _, g := range og {
		recs = append(recs, fmt.Sprintf(
			`{"name":"group %d (unfinished)","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{}}`,
			g, chromePidEngine, g, us(groupOpen[g])))
	}
	ol := make([]int16, 0, len(laneOpen))
	for l := range laneOpen {
		ol = append(ol, l)
	}
	sort.Slice(ol, func(i, j int) bool { return ol[i] < ol[j] })
	for _, l := range ol {
		recs = append(recs, fmt.Sprintf(
			`{"name":"task (unfinished)","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{}}`,
			chromePidScheduler, l, us(laneOpen[l].ts)))
	}

	gids := make([]int32, 0, len(groupsSeen))
	for g := range groupsSeen {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		meta(chromePidEngine, int64(g), "thread_name", fmt.Sprintf("group %d", g))
	}
	lids := make([]int16, 0, len(lanesSeen))
	for l := range lanesSeen {
		lids = append(lids, l)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	for _, l := range lids {
		meta(chromePidScheduler, int64(l), "thread_name", fmt.Sprintf("worker %d", l))
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	for i, r := range recs {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		if _, err := io.WriteString(w, sep+r); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
