package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/platform"
)

func TestPowerSeriesConstantLoad(t *testing.T) {
	// 4 equal tasks on 4 threads: constant occupancy, constant power.
	res := simulateParallel(4, 4)
	model := energy.Default()
	series := PowerSeries(res, model, 10)
	want := model.Power(res.Intervals[0])
	for i, p := range series {
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("column %d power %v, want %v", i, p, want)
		}
	}
}

func TestPowerSeriesDropsWithOccupancy(t *testing.T) {
	// A wide phase followed by a single straggler: later columns draw
	// less power.
	g := &platform.Graph{}
	for i := 0; i < 8; i++ {
		g.Add(1)
	}
	g.Add(4) // straggler
	res := platform.Simulate(platform.Haswell28(false), g, 8)
	series := PowerSeries(res, energy.Default(), 20)
	if series[0] <= series[len(series)-1] {
		t.Fatalf("power should drop at the tail: %v ... %v", series[0], series[len(series)-1])
	}
}

func TestPowerSeriesEmptyRun(t *testing.T) {
	series := PowerSeries(platform.Result{}, energy.Default(), 5)
	for _, p := range series {
		if p != 0 {
			t.Fatalf("empty run power: %v", series)
		}
	}
}

func TestRenderPower(t *testing.T) {
	res := simulateParallel(8, 4)
	var buf bytes.Buffer
	RenderPower(&buf, res, energy.Default(), PowerOptions{Width: 30, Height: 4})
	out := buf.String()
	if !strings.Contains(out, "power over time") || !strings.Contains(out, "W |") {
		t.Fatalf("render:\n%s", out)
	}
	// 4 bar rows + header + axis.
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Fatalf("line count %d:\n%s", lines, out)
	}
}

func TestRenderPowerEmpty(t *testing.T) {
	var buf bytes.Buffer
	RenderPower(&buf, platform.Result{}, energy.Model{}, PowerOptions{})
	if !strings.Contains(buf.String(), "no power data") {
		t.Fatalf("empty render: %q", buf.String())
	}
}
