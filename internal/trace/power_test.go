package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/platform"
)

func TestPowerSeriesConstantLoad(t *testing.T) {
	// 4 equal tasks on 4 threads: constant occupancy, constant power.
	res := simulateParallel(4, 4)
	model := energy.Default()
	series := PowerSeries(res, model, 10)
	want := model.Power(res.Intervals[0])
	for i, p := range series {
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("column %d power %v, want %v", i, p, want)
		}
	}
}

func TestPowerSeriesDropsWithOccupancy(t *testing.T) {
	// A wide phase followed by a single straggler: later columns draw
	// less power.
	g := &platform.Graph{}
	for i := 0; i < 8; i++ {
		g.Add(1)
	}
	g.Add(4) // straggler
	res := platform.Simulate(platform.Haswell28(false), g, 8)
	series := PowerSeries(res, energy.Default(), 20)
	if series[0] <= series[len(series)-1] {
		t.Fatalf("power should drop at the tail: %v ... %v", series[0], series[len(series)-1])
	}
}

func TestPowerSeriesEmptyRun(t *testing.T) {
	series := PowerSeries(platform.Result{}, energy.Default(), 5)
	for _, p := range series {
		if p != 0 {
			t.Fatalf("empty run power: %v", series)
		}
	}
}

func TestRenderPower(t *testing.T) {
	res := simulateParallel(8, 4)
	var buf bytes.Buffer
	RenderPower(&buf, res, energy.Default(), PowerOptions{Width: 30, Height: 4})
	out := buf.String()
	if !strings.Contains(out, "power over time") || !strings.Contains(out, "W |") {
		t.Fatalf("render:\n%s", out)
	}
	// 4 bar rows + header + axis.
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Fatalf("line count %d:\n%s", lines, out)
	}
}

func TestRenderPowerEmpty(t *testing.T) {
	var buf bytes.Buffer
	RenderPower(&buf, platform.Result{}, energy.Model{}, PowerOptions{})
	if !strings.Contains(buf.String(), "no power data") {
		t.Fatalf("empty render: %q", buf.String())
	}
}

// TestPowerSeriesBridgesSparseGaps is the regression test for the
// spurious power dips PowerSeries used to render: when the schedule's
// interval list is sparser than the column grid, interior uncovered
// columns fell to base power even though the machine never idled between
// the neighbouring intervals. They must interpolate instead; columns
// before the run starts and after it ends still read base power.
func TestPowerSeriesBridgesSparseGaps(t *testing.T) {
	model := energy.Default()
	busy4 := platform.Interval{Start: 0, End: 1, BusyThreads: 4, BusyCores: 4, ActiveSockets: 1}
	busy2 := platform.Interval{Start: 2, End: 3, BusyThreads: 2, BusyCores: 2, ActiveSockets: 1}
	res := platform.Result{Makespan: 3, Intervals: []platform.Interval{busy4, busy2}}

	s := PowerSeries(res, model, 3)
	p0, p2 := model.Power(busy4), model.Power(busy2)
	if math.Abs(s[0]-p0) > 1e-9 || math.Abs(s[2]-p2) > 1e-9 {
		t.Fatalf("covered columns [%v %v], want [%v %v]", s[0], s[2], p0, p2)
	}
	if want := (p0 + p2) / 2; math.Abs(s[1]-want) > 1e-9 {
		t.Fatalf("gap column %v, want interpolated %v", s[1], want)
	}
	if s[1] <= model.BasePower {
		t.Fatalf("gap column %v fell to base power %v (the old spurious dip)", s[1], model.BasePower)
	}

	// A wider grid over the same run: every interior gap column must sit
	// between its covered neighbours, monotonically interpolated.
	s = PowerSeries(res, model, 9)
	for c := 3; c < 6; c++ {
		if s[c] > p0+1e-9 || s[c] < p2-1e-9 {
			t.Fatalf("column %d power %v outside [%v, %v]", c, s[c], p2, p0)
		}
		if s[c-1] < s[c]-1e-9 {
			t.Fatalf("interpolation not monotone at column %d: %v", c, s[:7])
		}
	}

	// Leading/trailing idle is real idle: base power, not interpolation.
	mid := platform.Result{Makespan: 3, Intervals: []platform.Interval{
		{Start: 1, End: 2, BusyThreads: 4, BusyCores: 4, ActiveSockets: 1},
	}}
	s = PowerSeries(mid, model, 3)
	if s[0] != model.BasePower || s[2] != model.BasePower {
		t.Fatalf("idle edges [%v %v], want base power %v", s[0], s[2], model.BasePower)
	}
	if math.Abs(s[1]-model.Power(mid.Intervals[0])) > 1e-9 {
		t.Fatalf("covered middle %v", s[1])
	}
}
