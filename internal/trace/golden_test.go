package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

// Regenerate the goldens after an intentional rendering change with
//
//	go test ./internal/trace -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got against testdata/<name>.golden byte for byte,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenSchedule is a small fixed schedule covering Render's cases:
// multiple tasks per thread, glyph cycling, an idle gap, and a task
// clipped at the right edge.
func goldenSchedule() platform.Result {
	return platform.Result{
		Makespan:    10,
		BusyWork:    14,
		ThreadsUsed: 3,
		Assignments: []platform.Assignment{
			{Task: 0, Thread: 0, Start: 0, End: 3},
			{Task: 1, Thread: 0, Start: 3, End: 5},
			{Task: 2, Thread: 1, Start: 1, End: 4},
			{Task: 3, Thread: 1, Start: 6, End: 9},
			{Task: 7, Thread: 2, Start: 2, End: 5},
			{Task: 8, Thread: 2, Start: 9, End: 10},
		},
	}
}

// goldenEvents is a fixed observed-run log covering RenderEvents' and
// ChromeTrace's cases: two complete groups (one validating clean, one
// needing a redo), an aborted group with a squash and fallback, local and
// stolen scheduler dispatches, and an unfinished task span.
func goldenEvents() []obs.Event {
	const c = obs.LaneCoord
	return []obs.Event{
		{TS: 0, Lane: 0, Kind: obs.EvAuxProduced, Group: 0, Arg: 2},
		{TS: 50, Lane: 1, Kind: obs.EvAuxProduced, Group: 1, Arg: 2},
		{TS: 100, Lane: 0, Kind: obs.EvLocalHit, Group: -1, Arg: 0},
		{TS: 120, Lane: 0, Kind: obs.EvGroupStart, Group: 0, Arg: 0},
		{TS: 150, Lane: 1, Kind: obs.EvSteal, Group: -1, Arg: 0},
		{TS: 170, Lane: 1, Kind: obs.EvGroupStart, Group: 1, Arg: 8},
		{TS: 400, Lane: 0, Kind: obs.EvGroupFinish, Group: 0, Arg: 8},
		{TS: 410, Lane: 0, Kind: obs.EvTaskFinish, Group: -1, Arg: 0},
		{TS: 430, Lane: c, Kind: obs.EvValidateMatch, Group: 0, Arg: 0},
		{TS: 460, Lane: 0, Kind: obs.EvLocalHit, Group: -1, Arg: 0},
		{TS: 470, Lane: 0, Kind: obs.EvGroupStart, Group: 2, Arg: 16},
		{TS: 600, Lane: 1, Kind: obs.EvGroupFinish, Group: 1, Arg: 8},
		{TS: 610, Lane: 1, Kind: obs.EvTaskFinish, Group: -1, Arg: 0},
		{TS: 640, Lane: c, Kind: obs.EvValidateMismatch, Group: 1, Arg: 0},
		{TS: 660, Lane: c, Kind: obs.EvRedo, Group: 1, Arg: 1},
		{TS: 720, Lane: c, Kind: obs.EvValidateMatch, Group: 1, Arg: 1},
		{TS: 800, Lane: 0, Kind: obs.EvGroupFinish, Group: 2, Arg: 4},
		{TS: 830, Lane: c, Kind: obs.EvValidateMismatch, Group: 2, Arg: 0},
		{TS: 850, Lane: c, Kind: obs.EvRedo, Group: 2, Arg: 1},
		{TS: 870, Lane: c, Kind: obs.EvRedo, Group: 2, Arg: 2},
		{TS: 900, Lane: c, Kind: obs.EvAbort, Group: 2, Arg: 2},
		{TS: 910, Lane: c, Kind: obs.EvSquash, Group: 3, Arg: 8},
		{TS: 920, Lane: c, Kind: obs.EvFallback, Group: 2, Arg: 16},
		{TS: 940, Lane: 1, Kind: obs.EvSteal, Group: -1, Arg: 0},
	}
}

func TestRenderGolden(t *testing.T) {
	var b bytes.Buffer
	Render(&b, goldenSchedule(), Options{Width: 60})
	checkGolden(t, "render", b.Bytes())
}

func TestRenderEventsGolden(t *testing.T) {
	var b bytes.Buffer
	RenderEvents(&b, goldenEvents(), EventOptions{Width: 60})
	checkGolden(t, "events", b.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := ChromeTrace(&b, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("exporter produced invalid JSON:\n%s", b.Bytes())
	}
	checkGolden(t, "chrome", b.Bytes())
}

// TestChromeTraceEmpty pins the degenerate case: no events still yields a
// well-formed, loadable document.
func TestChromeTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := ChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("invalid JSON for empty log:\n%s", b.Bytes())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 { // the two process_name records
		t.Fatalf("records: %d", len(doc.TraceEvents))
	}
}
