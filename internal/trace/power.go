package trace

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/platform"
)

// PowerOptions controls the power-timeline rendering.
type PowerOptions struct {
	// Width is the timeline width in columns (default 80).
	Width int
	// Height is the bar height in rows (default 8).
	Height int
}

// PowerSeries buckets the modeled instantaneous power over the run into
// Width columns (time-weighted averages), the series behind the paper's
// watt-meter trace. Columns no interval overlaps are filled in two ways:
// outside the covered span (before the first interval or after the last)
// the machine is idle and the column reads the model's base power; inside
// it, an empty column only means the schedule's interval list is sparser
// than the column grid, so its power is linearly interpolated between the
// nearest covered neighbours instead of dipping to base power — a real
// watt-meter would never show those gaps.
func PowerSeries(res platform.Result, model energy.Model, width int) []float64 {
	if width <= 0 {
		width = 80
	}
	series := make([]float64, width)
	weight := make([]float64, width)
	if res.Makespan <= 0 {
		return series
	}
	colDur := res.Makespan / float64(width)
	for _, iv := range res.Intervals {
		p := model.Power(iv)
		for c := 0; c < width; c++ {
			lo := float64(c) * colDur
			hi := lo + colDur
			overlap := minF(hi, iv.End) - maxF(lo, iv.Start)
			if overlap > 0 {
				series[c] += p * overlap
				weight[c] += overlap
			}
		}
	}
	first, last := -1, -1
	for c := range series {
		if weight[c] > 0 {
			series[c] /= weight[c]
			if first < 0 {
				first = c
			}
			last = c
		}
	}
	if first < 0 {
		// Nothing ran at all: the whole timeline idles at base power.
		for c := range series {
			series[c] = model.BasePower
		}
		return series
	}
	for c := range series {
		if weight[c] > 0 {
			continue
		}
		if c < first || c > last {
			series[c] = model.BasePower // idle before the run starts / after it ends
			continue
		}
		// Interior gap: interpolate between the nearest covered columns.
		l := c - 1
		for weight[l] == 0 {
			l--
		}
		r := c + 1
		for weight[r] == 0 {
			r++
		}
		frac := float64(c-l) / float64(r-l)
		series[c] = series[l] + (series[r]-series[l])*frac
	}
	return series
}

// RenderPower draws the power timeline as an ASCII bar chart: one column
// per time bucket, bar height proportional to modeled system power.
func RenderPower(w io.Writer, res platform.Result, model energy.Model, o PowerOptions) {
	if o.Width <= 0 {
		o.Width = 80
	}
	if o.Height <= 0 {
		o.Height = 8
	}
	series := PowerSeries(res, model, o.Width)
	maxP := 0.0
	for _, p := range series {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		fmt.Fprintln(w, "(no power data)")
		return
	}
	fmt.Fprintf(w, "power over time: peak %.0f W, energy %.0f J, makespan %.2f\n",
		maxP, model.Energy(res), res.Makespan)
	for row := o.Height; row >= 1; row-- {
		threshold := maxP * float64(row) / float64(o.Height)
		line := make([]byte, o.Width)
		for c, p := range series {
			if p >= threshold-1e-9 {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Fprintf(w, "%5.0fW |%s\n", threshold, line)
	}
	fmt.Fprintf(w, "       +%s\n", repeatByte('-', o.Width))
}

func repeatByte(b byte, n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return string(out)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
