package trace

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/platform"
)

// PowerOptions controls the power-timeline rendering.
type PowerOptions struct {
	// Width is the timeline width in columns (default 80).
	Width int
	// Height is the bar height in rows (default 8).
	Height int
}

// PowerSeries buckets the modeled instantaneous power over the run into
// Width columns (time-weighted averages), the series behind the paper's
// watt-meter trace.
func PowerSeries(res platform.Result, model energy.Model, width int) []float64 {
	if width <= 0 {
		width = 80
	}
	series := make([]float64, width)
	weight := make([]float64, width)
	if res.Makespan <= 0 {
		return series
	}
	colDur := res.Makespan / float64(width)
	for _, iv := range res.Intervals {
		p := model.Power(iv)
		for c := 0; c < width; c++ {
			lo := float64(c) * colDur
			hi := lo + colDur
			overlap := minF(hi, iv.End) - maxF(lo, iv.Start)
			if overlap > 0 {
				series[c] += p * overlap
				weight[c] += overlap
			}
		}
	}
	for c := range series {
		if weight[c] > 0 {
			series[c] /= weight[c]
		} else {
			series[c] = model.BasePower // idle column
		}
	}
	return series
}

// RenderPower draws the power timeline as an ASCII bar chart: one column
// per time bucket, bar height proportional to modeled system power.
func RenderPower(w io.Writer, res platform.Result, model energy.Model, o PowerOptions) {
	if o.Width <= 0 {
		o.Width = 80
	}
	if o.Height <= 0 {
		o.Height = 8
	}
	series := PowerSeries(res, model, o.Width)
	maxP := 0.0
	for _, p := range series {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		fmt.Fprintln(w, "(no power data)")
		return
	}
	fmt.Fprintf(w, "power over time: peak %.0f W, energy %.0f J, makespan %.2f\n",
		maxP, model.Energy(res), res.Makespan)
	for row := o.Height; row >= 1; row-- {
		threshold := maxP * float64(row) / float64(o.Height)
		line := make([]byte, o.Width)
		for c, p := range series {
			if p >= threshold-1e-9 {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Fprintf(w, "%5.0fW |%s\n", threshold, line)
	}
	fmt.Fprintf(w, "       +%s\n", repeatByte('-', o.Width))
}

func repeatByte(b byte, n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return string(out)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
