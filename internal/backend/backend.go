// Package backend is the STATS back-end compiler (§3.4, "Generating a
// binary" and "Setting a tradeoff"): it takes the middle-end's IR and a
// configuration from the autotuner's state space and instantiates the
// configuration, producing the executable Program.
//
// Setting a tradeoff follows the paper's two compile-time steps: first the
// value at the chosen index is fetched by *executing* the tradeoff's
// getValue function (the paper uses LLVM's dynamic compiler; here the IR
// interpreter), then every reference is substituted according to the
// tradeoff's kind — constants replace placeholder calls, type choices
// re-type variables (inserting casts at their uses), and function choices
// replace placeholder callees. Finally the specialized runtime is "linked"
// into the binary: each state dependence carries its engine parameters.
//
// Instantiation is deliberately cheap (only these simple rewrites), which
// is why the paper splits the middle-end from the back-end: the autotuner
// re-instantiates the same IR for every configuration it probes.
package backend

import (
	"fmt"

	"repro/internal/ir"
)

// RuntimeOptions are the engine parameters the back-end specializes the
// runtime with for one state dependence.
type RuntimeOptions struct {
	UseAux    bool
	GroupSize int
	Window    int
	RedoMax   int
	Rollback  int
}

// Config selects what the back-end instantiates: tradeoff indices by
// (auxiliary) tradeoff name, and runtime options per dependence name.
type Config struct {
	TradeoffIdx map[string]int64
	Runtime     map[string]RuntimeOptions
}

// Program is the back-end's output: the specialized module plus the
// resolved bindings — the "binary".
type Program struct {
	Module *ir.Module
	// Constants maps constant tradeoffs to their resolved values.
	Constants map[string]int64
	// TypeBindings maps re-typed variables to their chosen type names.
	TypeBindings map[string]string
	// Callees maps function tradeoffs to their chosen implementations.
	Callees map[string]string
	// Runtime is the per-dependence specialized runtime configuration.
	Runtime map[string]RuntimeOptions
	// SizeIncrease is the instruction-count growth versus the original
	// (pre-middle-end) program, Table 1's "binary size increase" column.
	SizeIncrease float64
}

// Compile instantiates cfg against the module m. baselineInstrs is the
// instruction count of the program before the middle-end added auxiliary
// code (used for the size-increase metric; pass 0 to skip it).
func Compile(m *ir.Module, cfg Config, baselineInstrs int) (*Program, error) {
	p := &Program{
		Module:       cloneModule(m),
		Constants:    map[string]int64{},
		TypeBindings: map[string]string{},
		Callees:      map[string]string{},
		Runtime:      map[string]RuntimeOptions{},
	}

	for _, t := range p.Module.Tradeoffs {
		if !t.Aux {
			return nil, fmt.Errorf("backend: non-aux tradeoff %s survived the middle-end", t.Name)
		}
		idx, ok := cfg.TradeoffIdx[t.Name]
		if !ok {
			idx = t.Default
		}
		if idx < 0 || idx >= t.Size {
			return nil, fmt.Errorf("backend: tradeoff %s index %d out of [0,%d)", t.Name, idx, t.Size)
		}
		// Step 1: fetch the value by executing getValue.
		val, err := p.Module.Eval(t.GetValue, idx)
		if err != nil {
			return nil, fmt.Errorf("backend: resolving %s: %w", t.Name, err)
		}
		// Step 2: substitute references by kind.
		switch t.Kind {
		case ir.ConstantKind:
			p.Constants[t.Name] = val
			substitute(p.Module, t.Name, func(in *ir.Instr) {
				*in = ir.Instr{Op: ir.Const, Value: val}
			})
		case ir.TypeKind:
			if val < 0 || val >= int64(len(t.ValueNames)) {
				return nil, fmt.Errorf("backend: type tradeoff %s value %d out of range", t.Name, val)
			}
			typeName := t.ValueNames[val]
			substitute(p.Module, t.Name, func(in *ir.Instr) {
				p.TypeBindings[in.Name] = typeName
				// Re-type the variable and add the cast its uses
				// need ("extra casts are added according to the
				// variable's uses").
				*in = ir.Instr{Op: ir.Extern, Name: in.Name + ":" + typeName}
			})
		case ir.FunctionKind:
			if val < 0 || val >= int64(len(t.ValueNames)) {
				return nil, fmt.Errorf("backend: function tradeoff %s value %d out of range", t.Name, val)
			}
			callee := t.ValueNames[val]
			if _, ok := p.Module.Functions[callee]; !ok {
				return nil, fmt.Errorf("backend: function tradeoff %s selects missing callee %s", t.Name, callee)
			}
			p.Callees[t.Name] = callee
			substitute(p.Module, t.Name, func(in *ir.Instr) {
				*in = ir.Instr{Op: ir.Call, Callee: callee}
			})
		}
	}

	// Link the specialized runtime into each state dependence.
	for _, d := range p.Module.Deps {
		ro, ok := cfg.Runtime[d.Name]
		if !ok {
			ro = RuntimeOptions{} // conventional execution
		}
		if ro.UseAux && d.AuxCompute == "" {
			return nil, fmt.Errorf("backend: dependence %s has no auxiliary code", d.Name)
		}
		p.Runtime[d.Name] = ro
	}

	if baselineInstrs > 0 {
		p.SizeIncrease = float64(p.Module.InstrCount()-baselineInstrs) / float64(baselineInstrs)
	}
	return p, nil
}

// substitute applies fn to every instruction referencing the tradeoff.
func substitute(m *ir.Module, tradeoffName string, fn func(*ir.Instr)) {
	for _, f := range m.Functions {
		for i := range f.Instrs {
			if f.Instrs[i].Tradeoff == tradeoffName {
				fn(&f.Instrs[i])
			}
		}
	}
}

func cloneModule(m *ir.Module) *ir.Module {
	c := ir.NewModule()
	for name, f := range m.Functions {
		c.Functions[name] = f.Clone(name)
	}
	c.Tradeoffs = append([]ir.TradeoffMeta(nil), m.Tradeoffs...)
	c.Deps = append([]ir.DepMeta(nil), m.Deps...)
	return c
}

// Validate checks that the program is fully instantiated: no placeholder
// or type-use instructions remain and every callee resolves.
func (p *Program) Validate() error {
	for name, f := range p.Module.Functions {
		for i, in := range f.Instrs {
			switch in.Op {
			case ir.Placeholder, ir.TypeUse:
				return fmt.Errorf("backend: %s instr %d: unresolved %s reference to %s", name, i, in.Op, in.Tradeoff)
			case ir.Call:
				if _, ok := p.Module.Functions[in.Callee]; !ok {
					return fmt.Errorf("backend: %s instr %d: missing callee %s", name, i, in.Callee)
				}
			}
		}
	}
	return nil
}
