package backend

import (
	"strings"
	"testing"

	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/midend"
)

const fixture = `
tradeoff TO_layers {
    kind constant;
    values 1..10;
    default 4;
}

tradeoff TO_weightType {
    kind type;
    values half, single, double;
    default 2;
}

tradeoff TO_sqrt {
    kind function;
    values sqrt_exact, sqrt_newton2;
    default 0;
}

statedep track {
    input Frame;
    state Model;
    output Pos;
    compute updateModel uses TO_layers, TO_weightType, TO_sqrt;
    compare cmp;
}
`

func compile(t *testing.T, cfg Config) *Program {
	t.Helper()
	fo, err := frontend.Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	m, err := midend.Lower(fo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultInstantiation(t *testing.T) {
	p := compile(t, Config{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// layers default index 4 -> value 5.
	if got := p.Constants["TO_layers$aux$track"]; got != 5 {
		t.Fatalf("layers constant: %d", got)
	}
	// weight type default index 2 -> "double".
	if got := p.TypeBindings["v_TO_weightType"]; got != "double" {
		t.Fatalf("type binding: %q", got)
	}
	// sqrt default index 0 -> sqrt_exact.
	if got := p.Callees["TO_sqrt$aux$track"]; got != "sqrt_exact" {
		t.Fatalf("callee: %q", got)
	}
}

func TestExplicitConfig(t *testing.T) {
	p := compile(t, Config{
		TradeoffIdx: map[string]int64{
			"TO_layers$aux$track":     0,
			"TO_weightType$aux$track": 0,
			"TO_sqrt$aux$track":       1,
		},
		Runtime: map[string]RuntimeOptions{
			"track": {UseAux: true, GroupSize: 8, Window: 2, RedoMax: 1, Rollback: 2},
		},
	})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Constants["TO_layers$aux$track"] != 1 {
		t.Fatal("layers index 0 -> 1 layer")
	}
	if p.TypeBindings["v_TO_weightType"] != "half" {
		t.Fatal("type index 0 -> half")
	}
	if p.Callees["TO_sqrt$aux$track"] != "sqrt_newton2" {
		t.Fatal("function index 1 -> sqrt_newton2")
	}
	ro := p.Runtime["track"]
	if !ro.UseAux || ro.GroupSize != 8 {
		t.Fatalf("runtime: %+v", ro)
	}
}

func TestSubstitutionRewritesAuxOnly(t *testing.T) {
	p := compile(t, Config{TradeoffIdx: map[string]int64{"TO_layers$aux$track": 9}})
	// The aux compute's placeholder is now the constant 10.
	aux := p.Module.Functions["updateModel$aux$track"]
	found := false
	for _, in := range aux.Instrs {
		if in.Op == ir.Const && in.Value == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("aux constant not substituted")
	}
	// The original compute keeps its pinned default (5).
	orig := p.Module.Functions["updateModel"]
	for _, in := range orig.Instrs {
		if in.Op == ir.Const && in.Value == 10 {
			t.Fatal("original was rewritten by an aux tradeoff")
		}
	}
}

func TestFunctionSubstitutionRewiresCallee(t *testing.T) {
	p := compile(t, Config{TradeoffIdx: map[string]int64{"TO_sqrt$aux$track": 1}})
	kernel := p.Module.Functions["updateModel$kernel$aux$track"]
	found := false
	for _, in := range kernel.Instrs {
		if in.Op == ir.Call && in.Callee == "sqrt_newton2" {
			found = true
		}
	}
	if !found {
		t.Fatal("callee not rewired")
	}
}

func TestTypeSubstitutionRecordsCast(t *testing.T) {
	p := compile(t, Config{TradeoffIdx: map[string]int64{"TO_weightType$aux$track": 1}})
	// The type tradeoff lives in the kernel helper's aux clone.
	aux := p.Module.Functions["updateModel$kernel$aux$track"]
	found := false
	for _, in := range aux.Instrs {
		if in.Op == ir.Extern && strings.HasSuffix(in.Name, ":single") {
			found = true
		}
	}
	if !found {
		t.Fatal("re-typed variable missing cast annotation")
	}
}

func TestBadIndexRejected(t *testing.T) {
	fo, _ := frontend.Translate(fixture)
	m, _ := midend.Lower(fo)
	if _, err := Compile(m, Config{TradeoffIdx: map[string]int64{"TO_layers$aux$track": 10}}, 0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestUseAuxWithoutAuxRejected(t *testing.T) {
	fo, _ := frontend.Translate(fixture)
	m, _ := midend.Lower(fo)
	// Break the metadata: no aux compute.
	m.Deps[0].AuxCompute = ""
	if _, err := Compile(m, Config{Runtime: map[string]RuntimeOptions{"track": {UseAux: true}}}, 0); err == nil {
		t.Fatal("UseAux without aux code accepted")
	}
}

func TestSizeIncreaseReported(t *testing.T) {
	p := compile(t, Config{})
	if p.SizeIncrease <= 0 {
		t.Fatalf("size increase: %v", p.SizeIncrease)
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	fo, _ := frontend.Translate(fixture)
	m, _ := midend.Lower(fo)
	before := m.InstrCount()
	var refsBefore int
	for _, f := range m.Functions {
		refsBefore += len(f.TradeoffRefs())
	}
	if _, err := Compile(m, Config{}, 0); err != nil {
		t.Fatal(err)
	}
	var refsAfter int
	for _, f := range m.Functions {
		refsAfter += len(f.TradeoffRefs())
	}
	if m.InstrCount() != before || refsAfter != refsBefore {
		t.Fatal("Compile mutated the shared IR; re-instantiation would break")
	}
}

func TestRepeatedInstantiationCheap(t *testing.T) {
	// The autotuner re-instantiates the same IR for many configurations;
	// every instantiation must be independent.
	fo, _ := frontend.Translate(fixture)
	m, _ := midend.Lower(fo)
	for idx := int64(0); idx < 10; idx++ {
		p, err := Compile(m, Config{TradeoffIdx: map[string]int64{"TO_layers$aux$track": idx}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Constants["TO_layers$aux$track"] != idx+1 {
			t.Fatalf("instantiation %d wrong", idx)
		}
	}
}
