package profiler

import (
	"testing"

	"repro/internal/autotune"
	"repro/internal/energy"
	"repro/internal/platform"
	"repro/internal/taskgen"
	"repro/internal/workload"
	"repro/internal/workload/bodytrack"
	"repro/internal/workload/fluidanimate"
	"repro/internal/workload/swaptions"
)

func bodytrackProfiler(mode taskgen.Mode, threads int) *P {
	return &P{
		Machine:   platform.Haswell28(false),
		Threads:   threads,
		Energy:    energy.Default(),
		W:         bodytrack.New(),
		Size:      workload.NativeSize,
		Mode:      mode,
		GraphSeed: 7,
	}
}

func TestBuildSpaceShape(t *testing.T) {
	s := BuildSpace(bodytrack.New(), 28)
	// 3 tradeoffs + 5 dependence dims + thread split.
	if s.Len() != 9 {
		t.Fatalf("dimensions: %d", s.Len())
	}
	if s.Cardinality() < 1e4 {
		t.Fatalf("cardinality suspiciously small: %v", s.Cardinality())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	w := bodytrack.New()
	s := BuildSpace(w, 28)
	c := s.Default()
	s.Set(c, "dep.aux", 1)
	s.Set(c, "dep.window", 4) // -> value 4
	s.Set(c, "dep.group", 2)  // -> value 8
	s.Set(c, "threads.original", 9)
	o, threads := Decode(s, c, w)
	if !o.UseAux || o.Window != 4 || o.GroupSize != 8 {
		t.Fatalf("decoded: %+v", o)
	}
	if threads != 10 {
		t.Fatalf("threads: %d", threads)
	}
	if len(o.TradeoffIdx) != 3 {
		t.Fatalf("tradeoff indices: %v", o.TradeoffIdx)
	}
}

func TestDefaultDecodesToBaseline(t *testing.T) {
	w := bodytrack.New()
	s := BuildSpace(w, 28)
	o, threads := Decode(s, s.Default(), w)
	if o.UseAux {
		t.Fatal("baseline must not speculate")
	}
	if threads != 28 {
		t.Fatalf("baseline threads: %d", threads)
	}
}

func TestMeasureSTATSFasterThanBaseline(t *testing.T) {
	p := bodytrackProfiler(taskgen.ParSTATS, 28)
	base := p.Measure(workload.SpecOptions{}, 28)
	spec := p.Measure(workload.SpecOptions{
		UseAux: true, GroupSize: 8, Window: 3, RedoMax: 2, Rollback: 2,
	}, 28)
	if spec.TimeSeconds >= base.TimeSeconds {
		t.Fatalf("speculation not faster: %v vs %v", spec.TimeSeconds, base.TimeSeconds)
	}
	if spec.EnergyJ >= base.EnergyJ {
		t.Fatalf("speculation not cheaper: %v vs %v", spec.EnergyJ, base.EnergyJ)
	}
}

func TestThreadSplitCapsInnerWidth(t *testing.T) {
	p := bodytrackProfiler(taskgen.Original, 28)
	wide := p.Measure(workload.SpecOptions{}, 28)
	narrow := p.Measure(workload.SpecOptions{}, 2)
	if narrow.TimeSeconds <= wide.TimeSeconds {
		t.Fatalf("capping original TLP should slow it: %v vs %v", narrow.TimeSeconds, wide.TimeSeconds)
	}
}

func TestTuningFindsSpeculativeConfig(t *testing.T) {
	w := bodytrack.New()
	p := bodytrackProfiler(taskgen.ParSTATS, 28)
	s := BuildSpace(w, 28)
	res := autotune.Tune(s, p.Objective(s, Time, false), autotune.Options{Budget: 120, Seed: 1})
	o, _ := Decode(s, res.Best, w)
	if !o.UseAux {
		t.Fatal("tuner should discover speculation helps bodytrack")
	}
	baseline := p.Measure(workload.SpecOptions{}, 28)
	if res.BestVal >= baseline.TimeSeconds {
		t.Fatalf("tuned %v not faster than baseline %v", res.BestVal, baseline.TimeSeconds)
	}
}

func TestTunerRejectsFluidanimateAux(t *testing.T) {
	// §4.8: the autotuner empirically finds that fluidanimate's aux code
	// always aborts and chooses a configuration without it.
	w := fluidanimate.New()
	p := &P{
		Machine:   platform.Haswell28(false),
		Threads:   28,
		Energy:    energy.Default(),
		W:         w,
		Size:      workload.NativeSize,
		Mode:      taskgen.ParSTATS,
		GraphSeed: 3,
	}
	s := BuildSpace(w, 28)
	res := autotune.Tune(s, p.Objective(s, Time, false), autotune.Options{Budget: 150, Seed: 2})
	o, _ := Decode(s, res.Best, w)
	if o.UseAux && o.GroupSize < workload.NativeSize {
		t.Fatalf("tuner kept doomed speculation: %+v (best %v)", o, res.BestVal)
	}
}

func TestEnergyGoalPrefersNarrowerRuns(t *testing.T) {
	w := swaptions.New()
	p := &P{
		Machine:   platform.Haswell28(false),
		Threads:   28,
		Energy:    energy.Default(),
		W:         w,
		Size:      workload.NativeSize,
		Mode:      taskgen.ParSTATS,
		GraphSeed: 5,
	}
	s := BuildSpace(w, 28)
	timeRes := autotune.Tune(s, p.Objective(s, Time, false), autotune.Options{Budget: 100, Seed: 3})
	energyRes := autotune.Tune(s, p.Objective(s, Energy, false), autotune.Options{Budget: 100, Seed: 3})
	// Evaluate both winners under the energy metric: the energy-tuned
	// binary must not lose.
	oTime, thTime := Decode(s, timeRes.Best, w)
	oEnergy, thEnergy := Decode(s, energyRes.Best, w)
	if p.Measure(oEnergy, thEnergy).EnergyJ > p.Measure(oTime, thTime).EnergyJ {
		t.Fatal("energy-tuned config draws more energy than time-tuned")
	}
}

func TestBadTrainingMisleadsProfiler(t *testing.T) {
	p := bodytrackProfiler(taskgen.ParSTATS, 28)
	p.Training = true
	o := workload.SpecOptions{UseAux: true, GroupSize: 8, Window: 1, RedoMax: 1, Rollback: 2, BadTraining: true}
	misled := p.Measure(o, 28)
	o.BadTraining = false
	honest := p.Measure(o, 28)
	// With a window of 1, honest profiling sees mismatch risk; the §4.6
	// static-subject inputs hide it (the workload's cost model saturates
	// its window term).
	if misled.TimeSeconds > honest.TimeSeconds {
		t.Fatalf("bad training should look faster: %v vs %v", misled.TimeSeconds, honest.TimeSeconds)
	}
}

func TestGoalString(t *testing.T) {
	if Time.String() != "time" || Energy.String() != "energy" {
		t.Fatal("goal strings")
	}
}
