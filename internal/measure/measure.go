// Package measure implements the paper's measurement methodology (§4.1,
// "Statistics and convergence"): "We run the relevant configuration as many
// times as necessary to achieve a tight confidence interval where 95% of
// the measurements are within 5% of the mean."
package measure

import "repro/internal/mathx"

// Options controls a converging measurement.
type Options struct {
	// Frac and Tol define the convergence rule: Frac of the samples must
	// lie within Tol (relative) of the mean. Defaults: 0.95 and 0.05.
	Frac float64
	Tol  float64
	// MinRuns and MaxRuns bound the repetition (defaults 3 and 100).
	MinRuns int
	MaxRuns int
}

func (o Options) withDefaults() Options {
	if o.Frac == 0 {
		o.Frac = 0.95
	}
	if o.Tol == 0 {
		o.Tol = 0.05
	}
	if o.MinRuns < 1 {
		o.MinRuns = 3
	}
	if o.MaxRuns < o.MinRuns {
		o.MaxRuns = 100
	}
	return o
}

// Result reports a converged (or exhausted) measurement.
type Result struct {
	Mean      float64
	StdDev    float64
	Samples   []float64
	Converged bool
}

// Repeat calls sample (which receives the run index, usable as a seed
// offset) until the convergence rule holds or MaxRuns is reached.
func Repeat(sample func(run int) float64, o Options) Result {
	o = o.withDefaults()
	var xs []float64
	for run := 0; run < o.MaxRuns; run++ {
		xs = append(xs, sample(run))
		if len(xs) >= o.MinRuns && mathx.WithinFraction(xs, o.Frac, o.Tol) {
			return Result{Mean: mathx.Mean(xs), StdDev: mathx.StdDev(xs), Samples: xs, Converged: true}
		}
	}
	return Result{Mean: mathx.Mean(xs), StdDev: mathx.StdDev(xs), Samples: xs, Converged: false}
}
