package measure

import (
	"testing"

	"repro/internal/rng"
)

func TestRepeatConvergesOnStableSamples(t *testing.T) {
	res := Repeat(func(int) float64 { return 42 }, Options{})
	if !res.Converged {
		t.Fatal("constant samples should converge")
	}
	if res.Mean != 42 || res.StdDev != 0 {
		t.Fatalf("stats: %+v", res)
	}
	if len(res.Samples) != 3 {
		t.Fatalf("should converge at MinRuns: %d samples", len(res.Samples))
	}
}

func TestRepeatKeepsSamplingNoisyMeasurements(t *testing.T) {
	r := rng.New(1)
	// 20% relative noise: needs more than MinRuns to satisfy 95%-within-5%.
	res := Repeat(func(int) float64 { return 100 * (1 + 0.2*r.Norm()) }, Options{MaxRuns: 40})
	if len(res.Samples) <= 3 {
		t.Fatalf("noisy measurement converged suspiciously fast: %d samples", len(res.Samples))
	}
}

func TestRepeatExhaustsBudget(t *testing.T) {
	// Alternating far-apart values can never satisfy the rule.
	res := Repeat(func(run int) float64 {
		if run%2 == 0 {
			return 1
		}
		return 100
	}, Options{MaxRuns: 10})
	if res.Converged {
		t.Fatal("bimodal samples should not converge")
	}
	if len(res.Samples) != 10 {
		t.Fatalf("samples: %d", len(res.Samples))
	}
}

func TestRepeatPassesRunIndex(t *testing.T) {
	var got []int
	Repeat(func(run int) float64 {
		got = append(got, run)
		return 1
	}, Options{MinRuns: 2})
	if len(got) < 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("run indices: %v", got)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Frac != 0.95 || o.Tol != 0.05 || o.MinRuns != 3 || o.MaxRuns != 100 {
		t.Fatalf("defaults: %+v", o)
	}
}
