// Package related implements the prior-work comparators of §4.4 (Fig. 17):
// ALTER-like, QuickStep-like, HELIX-UP-like, and Fast Track, applied to the
// same state dependences STATS targets. The paper implemented these
// approaches on its own infrastructure and "kept the highest speedups
// obtained without exceeding the original output variability"; this package
// reproduces their decision logic and the execution shapes they induce:
//
//   - ALTER-like breaks dependences whose state is a scalar reduction
//     variable (variable = variable op value) — only swaptions qualifies.
//   - QuickStep-like and HELIX-UP-like break dependences without state
//     cloning or auxiliary code; they preserve output quality only where
//     the broken dependence is statistically safe — again only swaptions.
//   - Fast Track speculates and validates against a *single* unspeculative
//     state, ignoring the program's nondeterminism; in the paper's
//     experiments it "always aborted its speculations". On this runtime
//     that is exactly a redo budget of zero.
package related

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// Approach is one of the compared systems.
type Approach int

const (
	// AlterLike is the ALTER-style breakable-dependence system [81].
	AlterLike Approach = iota
	// QuickStepLike is the statistical-accuracy-test parallelizer [57].
	QuickStepLike
	// HelixUpLike is the relaxed-semantics parallelizer [16].
	HelixUpLike
	// FastTrack is the speculative optimization system [44].
	FastTrack
	// STATS is this paper's system.
	STATS
)

// Approaches lists the comparators in Fig. 17's order.
var Approaches = []Approach{AlterLike, QuickStepLike, HelixUpLike, FastTrack, STATS}

// String returns the approach's Fig. 17 label.
func (a Approach) String() string {
	switch a {
	case AlterLike:
		return "ALTER like"
	case QuickStepLike:
		return "QuickStep like"
	case HelixUpLike:
		return "HELIX-UP like"
	case FastTrack:
		return "Fast Track"
	case STATS:
		return "STATS"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// BreaksDependence reports whether the approach can take advantage of the
// workload's state dependence while preserving output quality (§4.4).
func BreaksDependence(a Approach, d workload.Descriptor) bool {
	switch a {
	case AlterLike:
		return d.ScalarReductionState
	case QuickStepLike, HelixUpLike:
		return d.SafeToBreak
	case FastTrack:
		// Fast Track tries but its single-state validation always
		// fails on these nondeterministic benchmarks.
		return false
	case STATS:
		return d.SupportsSTATS
	default:
		return false
	}
}

// Graph builds the task graph the approach induces for the workload under
// the given mode and options.
func Graph(a Approach, mode taskgen.Mode, d workload.Descriptor, m workload.Model, o workload.SpecOptions, seed uint64) *platform.Graph {
	switch {
	case a == STATS:
		return taskgen.Build(mode, m, o, seed)
	case BreaksDependence(a, d):
		// The dependence is simply broken: group-parallel execution
		// with no auxiliary code, no validation, no aborts.
		broken := m
		broken.AuxWork = 0
		broken.ValidateWork = 0
		broken.MatchProb = 1
		bo := o
		bo.UseAux = true
		return taskgen.Build(mode, broken, bo, seed)
	case a == FastTrack:
		// Speculation that always aborts: wasted speculative work plus
		// the sequential fallback (§4.4: "'Fast Track' always aborted
		// its speculations in our experiments").
		failing := m
		failing.AuxWork = 0 // Fast Track runs the unsafe version, not aux code
		failing.MatchProb = 0
		failing.RedoGain = 0
		fo := o
		fo.UseAux = true
		fo.RedoMax = 0
		return taskgen.Build(mode, failing, fo, seed)
	default:
		// Cannot break the dependence without losing quality: the best
		// admissible configuration is the conventional one.
		co := o
		co.UseAux = false
		return taskgen.Build(mode, m, co, seed)
	}
}
