package related

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/taskgen"
	"repro/internal/workload"
	"repro/internal/workload/bodytrack"
	"repro/internal/workload/swaptions"
)

func opts() workload.SpecOptions {
	return workload.SpecOptions{UseAux: true, GroupSize: 4, Window: 2, RedoMax: 2, Rollback: 2}
}

func TestApplicabilityMatrix(t *testing.T) {
	sw := swaptions.New().Desc()
	bt := bodytrack.New().Desc()
	cases := []struct {
		a      Approach
		sw, bt bool
	}{
		{AlterLike, true, false},
		{QuickStepLike, true, false},
		{HelixUpLike, true, false},
		{FastTrack, false, false},
		{STATS, true, true},
	}
	for _, c := range cases {
		if BreaksDependence(c.a, sw) != c.sw {
			t.Fatalf("%s on swaptions: want %v", c.a, c.sw)
		}
		if BreaksDependence(c.a, bt) != c.bt {
			t.Fatalf("%s on bodytrack: want %v", c.a, c.bt)
		}
	}
}

func TestOnlySTATSHelpsBodytrack(t *testing.T) {
	w := bodytrack.New()
	d := w.Desc()
	m := w.CostModel(32, opts())
	mach := platform.Haswell28(false)
	seqBase := platform.Simulate(mach, taskgen.Build(taskgen.Sequential, m, workload.SpecOptions{}, 1), 1).Makespan

	speedup := func(a Approach) float64 {
		g := Graph(a, taskgen.ParSTATS, d, m, opts(), 1)
		return seqBase / platform.Simulate(mach, g, 28).Makespan
	}
	stats := speedup(STATS)
	for _, a := range []Approach{AlterLike, QuickStepLike, HelixUpLike, FastTrack} {
		if s := speedup(a); s >= stats {
			t.Fatalf("%s speedup %v should trail STATS %v on bodytrack", a, s, stats)
		}
	}
}

func TestBreakersMatchSTATSOnSwaptions(t *testing.T) {
	w := swaptions.New()
	d := w.Desc()
	m := w.CostModel(32, opts())
	mach := platform.Haswell28(false)
	seqBase := platform.Simulate(mach, taskgen.Build(taskgen.Sequential, m, workload.SpecOptions{}, 1), 1).Makespan
	speedup := func(a Approach) float64 {
		g := Graph(a, taskgen.ParSTATS, d, m, opts(), 1)
		return seqBase / platform.Simulate(mach, g, 28).Makespan
	}
	stats := speedup(STATS)
	alter := speedup(AlterLike)
	// ALTER breaks swaptions' trivial dependence without aux overhead,
	// so it is at least as fast as STATS there (§4.4).
	if alter < stats*0.95 {
		t.Fatalf("ALTER %v should be competitive with STATS %v on swaptions", alter, stats)
	}
}

func TestFastTrackNoBetterThanConventional(t *testing.T) {
	w := bodytrack.New()
	d := w.Desc()
	m := w.CostModel(32, opts())
	mach := platform.Haswell28(false)
	ft := platform.Simulate(mach, Graph(FastTrack, taskgen.ParSTATS, d, m, opts(), 1), 28).Makespan
	conv := platform.Simulate(mach, Graph(QuickStepLike, taskgen.ParSTATS, d, m, opts(), 1), 28).Makespan
	if ft < conv {
		t.Fatalf("always-aborting Fast Track (%v) beat the conventional execution (%v)", ft, conv)
	}
}

func TestFastTrackAlwaysAbortsOnRealEngine(t *testing.T) {
	// Fast Track's single-state validation is RedoMax=0 on this runtime:
	// bodytrack's triangulating acceptance needs at least two originals,
	// so every validation fails — reproducing §4.4.
	w := bodytrack.New()
	for seed := uint64(0); seed < 3; seed++ {
		_, st := w.RunSTATS(seed, 16, workload.SpecOptions{
			UseAux: true, GroupSize: 4, Window: 3, RedoMax: 0, Rollback: 2, Workers: 2,
		})
		if st.Matches != 0 {
			t.Fatalf("seed %d: single-state validation matched (stats %+v)", seed, st)
		}
		if st.Aborts != 1 {
			t.Fatalf("seed %d: expected an abort (stats %+v)", seed, st)
		}
	}
}

func TestApproachStrings(t *testing.T) {
	want := []string{"ALTER like", "QuickStep like", "HELIX-UP like", "Fast Track", "STATS"}
	for i, a := range Approaches {
		if a.String() != want[i] {
			t.Fatalf("approach %d string %q", i, a.String())
		}
	}
	if Approach(99).String() != "Approach(99)" {
		t.Fatal("unknown approach string")
	}
}
