package energy

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func interval(start, end float64, threads, cores, sockets int) platform.Interval {
	return platform.Interval{Start: start, End: end, BusyThreads: threads, BusyCores: cores, ActiveSockets: sockets}
}

func TestPowerComposition(t *testing.T) {
	m := Model{BasePower: 100, SocketPower: 20, CorePower: 5, ThreadPower: 1}
	iv := interval(0, 1, 4, 4, 1)
	// 100 + 20 + 4*5 = 140, no HT extra.
	if got := m.Power(iv); got != 140 {
		t.Fatalf("power: %v", got)
	}
	// Two HT threads sharing each of 2 cores: 2 extra threads.
	iv2 := interval(0, 1, 4, 2, 1)
	if got := m.Power(iv2); got != 100+20+10+2 {
		t.Fatalf("HT power: %v", got)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := Model{BasePower: 10, SocketPower: 0, CorePower: 1}
	res := platform.Result{
		Makespan: 3,
		Intervals: []platform.Interval{
			interval(0, 1, 2, 2, 1),
			interval(1, 3, 1, 1, 1),
		},
	}
	// (10+2)*1 + (10+1)*2 = 34.
	if got := m.Energy(res); got != 34 {
		t.Fatalf("energy: %v", got)
	}
	if got := m.AvgPower(res); math.Abs(got-34.0/3) > 1e-9 {
		t.Fatalf("avg power: %v", got)
	}
}

func TestIdleTailDrawsBasePower(t *testing.T) {
	m := Model{BasePower: 7}
	res := platform.Result{Makespan: 5, Intervals: []platform.Interval{interval(0, 2, 1, 1, 1)}}
	// 2s covered at 7W + 3s idle at 7W = 35.
	if got := m.Energy(res); got != 35 {
		t.Fatalf("energy with idle tail: %v", got)
	}
}

func TestAvgPowerEmptyRun(t *testing.T) {
	if Default().AvgPower(platform.Result{}) != 0 {
		t.Fatal("empty run power")
	}
}

func TestFasterRunUsesLessEnergy(t *testing.T) {
	// The same work done in less time on more cores can still save
	// energy because base power dominates: the Fig. 15 time-mode effect.
	m := Default()
	g := &platform.Graph{}
	for i := 0; i < 28; i++ {
		g.Add(10)
	}
	mach := platform.Haswell28(false)
	slow := platform.Simulate(mach, g, 2)
	fast := platform.Simulate(mach, g, 28)
	if platformEnergy := m.Energy(fast); platformEnergy >= m.Energy(slow) {
		t.Fatalf("fast run should save energy: fast %v, slow %v", platformEnergy, m.Energy(slow))
	}
}

func TestFewerIdleCoresSaveEnergyAtEqualTime(t *testing.T) {
	// Two runs with the same makespan: the one that keeps fewer cores
	// busy draws less energy — the Fig. 15 energy-mode effect.
	m := Default()
	mach := platform.Haswell28(false)
	gNarrow := &platform.Graph{}
	for i := 0; i < 4; i++ {
		gNarrow.Add(10)
	}
	gWide := &platform.Graph{}
	for i := 0; i < 28; i++ {
		gWide.Add(10)
	}
	narrow := platform.Simulate(mach, gNarrow, 4) // 4 cores, 10s
	wide := platform.Simulate(mach, gWide, 28)    // 28 cores, 10s
	if narrow.Makespan != wide.Makespan {
		t.Fatalf("setup broken: %v vs %v", narrow.Makespan, wide.Makespan)
	}
	if m.Energy(narrow) >= m.Energy(wide) {
		t.Fatal("narrow run should draw less energy")
	}
}

func TestDefaultCalibration(t *testing.T) {
	// A fully busy socket should draw roughly the package's 120 W peak.
	m := Default()
	socket := m.SocketPower + 14*m.CorePower
	if socket < 100 || socket > 130 {
		t.Fatalf("socket peak %v out of plausible range", socket)
	}
}
