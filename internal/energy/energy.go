// Package energy models the paper's system-wide energy measurements. The
// paper measures AC-side total system power with a Watts Up Pro meter at
// 1-second intervals (§4.1); here a calibrated power model is integrated
// over the platform simulator's occupancy trace instead. The model captures
// the two effects Fig. 15 depends on: finishing earlier saves energy
// (time mode), and leaving cores idle saves more (energy mode, which avoids
// "using extra cores if the additional performance obtained by them is not
// significant").
package energy

import "repro/internal/platform"

// Model is an affine system power model: a base draw for the machine being
// on, a per-active-socket draw (uncore, memory controller), a per-busy-core
// draw, and a small extra per busy hardware thread (Hyper-Threading keeps
// the core's structures busier).
type Model struct {
	// BasePower is drawn whenever the system is on (fans, disks, DRAM
	// refresh, PSU loss), in watts.
	BasePower float64
	// SocketPower is drawn per socket with at least one busy core.
	SocketPower float64
	// CorePower is drawn per busy core.
	CorePower float64
	// ThreadPower is drawn per busy hardware thread beyond the first on
	// a core.
	ThreadPower float64
}

// Default returns a model calibrated to the paper's platform: two Xeon
// E5-2695 v3 packages with a 120 W peak each. 14 busy cores at 6.5 W plus
// a 26 W uncore ≈ 117 W ≈ the package peak; 60 W covers the rest of the
// system at the wall.
func Default() Model {
	return Model{BasePower: 60, SocketPower: 26, CorePower: 6.5, ThreadPower: 1.5}
}

// Power returns the modeled instantaneous system power for an occupancy
// interval.
func (m Model) Power(iv platform.Interval) float64 {
	p := m.BasePower
	p += float64(iv.ActiveSockets) * m.SocketPower
	p += float64(iv.BusyCores) * m.CorePower
	if extra := iv.BusyThreads - iv.BusyCores; extra > 0 {
		p += float64(extra) * m.ThreadPower
	}
	return p
}

// Energy integrates the model over a simulation's occupancy trace and
// returns joules (watts × simulated seconds; one work unit is one second at
// full speed).
func (m Model) Energy(res platform.Result) float64 {
	e := 0.0
	covered := 0.0
	for _, iv := range res.Intervals {
		dt := iv.End - iv.Start
		e += dt * m.Power(iv)
		covered += dt
	}
	// Any uncovered makespan (fully idle spans) draws base power.
	if res.Makespan > covered {
		e += (res.Makespan - covered) * m.BasePower
	}
	return e
}

// AvgPower returns the mean power over the run, or 0 for an empty run.
func (m Model) AvgPower(res platform.Result) float64 {
	if res.Makespan == 0 {
		return 0
	}
	return m.Energy(res) / res.Makespan
}
